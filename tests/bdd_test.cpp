#include <gtest/gtest.h>

#include <cmath>

#include "bdd/manager.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

using bdd::BddManager;
using bdd::NodeRef;

TEST(Bdd, TerminalIdentities) {
  BddManager mgr(4);
  EXPECT_EQ(mgr.bddNot(BddManager::kTrue), BddManager::kFalse);
  EXPECT_EQ(mgr.bddAnd(BddManager::kTrue, BddManager::kFalse),
            BddManager::kFalse);
  EXPECT_EQ(mgr.bddOr(BddManager::kTrue, BddManager::kFalse),
            BddManager::kTrue);
}

TEST(Bdd, HashConsingCanonicity) {
  BddManager mgr(4);
  const NodeRef a = mgr.var(0);
  const NodeRef b = mgr.var(1);
  // Same function built two ways must be the same node.
  const NodeRef f1 = mgr.bddAnd(a, b);
  const NodeRef f2 = mgr.bddNot(mgr.bddOr(mgr.bddNot(a), mgr.bddNot(b)));
  EXPECT_EQ(f1, f2);  // De Morgan, structurally canonical
}

TEST(Bdd, ComplementLaws) {
  BddManager mgr(3);
  const NodeRef x = mgr.var(1);
  EXPECT_EQ(mgr.bddAnd(x, mgr.bddNot(x)), BddManager::kFalse);
  EXPECT_EQ(mgr.bddOr(x, mgr.bddNot(x)), BddManager::kTrue);
  EXPECT_EQ(mgr.bddNot(mgr.bddNot(x)), x);
  EXPECT_EQ(mgr.bddXor(x, x), BddManager::kFalse);
}

TEST(Bdd, SatCountBasics) {
  BddManager mgr(4);
  EXPECT_EQ(mgr.satCount(BddManager::kTrue), 16.0);
  EXPECT_EQ(mgr.satCount(BddManager::kFalse), 0.0);
  EXPECT_EQ(mgr.satCount(mgr.var(0)), 8.0);
  EXPECT_EQ(mgr.satCount(mgr.bddAnd(mgr.var(0), mgr.var(3))), 4.0);
  EXPECT_EQ(mgr.satCount(mgr.bddXor(mgr.var(1), mgr.var(2))), 8.0);
}

TEST(Bdd, MintermHasOneSatisfyingAssignment) {
  BddManager mgr(6);
  const NodeRef m = mgr.minterm(0b101011, 6);
  EXPECT_EQ(mgr.satCount(m), 1.0);
  EXPECT_TRUE(mgr.evaluate(m, 0b101011));
  EXPECT_FALSE(mgr.evaluate(m, 0b101010));
}

TEST(Bdd, CubeAndSupport) {
  BddManager mgr(5);
  const NodeRef c = mgr.cube({0, 2, 4});
  EXPECT_EQ(mgr.satCount(c), 4.0);  // 2 free variables
  const auto support = mgr.support(c);
  EXPECT_EQ(support, (std::vector<std::uint32_t>{0, 2, 4}));
}

TEST(Bdd, RestrictIsCofactor) {
  BddManager mgr(3);
  const NodeRef f =
      mgr.bddOr(mgr.bddAnd(mgr.var(0), mgr.var(1)), mgr.var(2));
  EXPECT_EQ(mgr.restrict(f, 0, true), mgr.bddOr(mgr.var(1), mgr.var(2)));
  EXPECT_EQ(mgr.restrict(f, 0, false), mgr.var(2));
}

TEST(Bdd, ExistsAndForall) {
  BddManager mgr(3);
  const NodeRef f = mgr.bddAnd(mgr.var(0), mgr.var(1));
  const NodeRef cube0 = mgr.cube({0});
  EXPECT_EQ(mgr.exists(f, cube0), mgr.var(1));
  EXPECT_EQ(mgr.forall(f, cube0), BddManager::kFalse);
  const NodeRef g = mgr.bddOr(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.forall(g, cube0), mgr.var(1));
}

TEST(Bdd, AndExistsEqualsComposition) {
  util::Xoshiro256 rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    BddManager mgr(8);
    // Random functions from random minterms.
    NodeRef f = BddManager::kFalse;
    NodeRef g = BddManager::kFalse;
    for (int i = 0; i < 12; ++i) {
      f = mgr.bddOr(f, mgr.minterm(rng.nextBounded(256), 8));
      g = mgr.bddOr(g, mgr.minterm(rng.nextBounded(256), 8));
    }
    const NodeRef cube = mgr.cube({1, 3, 5});
    EXPECT_EQ(mgr.andExists(f, g, cube),
              mgr.exists(mgr.bddAnd(f, g), cube));
  }
}

TEST(Bdd, EvaluateMatchesTruthTable) {
  util::Xoshiro256 rng(31);
  BddManager mgr(6);
  // Build a random function as OR of minterms; evaluate must agree exactly.
  std::vector<bool> truth(64, false);
  NodeRef f = BddManager::kFalse;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t m = rng.nextBounded(64);
    truth[m] = true;
    f = mgr.bddOr(f, mgr.minterm(m, 6));
  }
  double count = 0;
  for (std::uint64_t a = 0; a < 64; ++a) {
    EXPECT_EQ(mgr.evaluate(f, a), truth[a]) << a;
    count += truth[a] ? 1 : 0;
  }
  EXPECT_EQ(mgr.satCount(f), count);
}

TEST(Bdd, XorLinearFunctionSizeIsLinear) {
  // Parity of n variables has 2n-1 internal nodes in any order.
  BddManager mgr(10);
  NodeRef parity = BddManager::kFalse;
  for (std::uint32_t v = 0; v < 10; ++v) {
    parity = mgr.bddXor(parity, mgr.var(v));
  }
  EXPECT_EQ(mgr.satCount(parity), 512.0);
  EXPECT_LE(mgr.functionSize(parity), 2u * 10u + 2u);
}

TEST(Bdd, ShiftVarsRenames) {
  BddManager mgr(6);
  const NodeRef f = mgr.bddAnd(mgr.var(1), mgr.bddNot(mgr.var(3)));
  const NodeRef shifted = mgr.shiftVars(f, -1);
  EXPECT_EQ(shifted, mgr.bddAnd(mgr.var(0), mgr.bddNot(mgr.var(2))));
  EXPECT_EQ(mgr.shiftVars(shifted, 1), f);
}

TEST(Bdd, IteGeneral) {
  BddManager mgr(3);
  const NodeRef f = mgr.ite(mgr.var(0), mgr.var(1), mgr.var(2));
  // Truth table check of the multiplexer.
  for (std::uint64_t a = 0; a < 8; ++a) {
    const bool expected = (a & 1) ? ((a >> 1) & 1) : ((a >> 2) & 1);
    EXPECT_EQ(mgr.evaluate(f, a), expected) << a;
  }
}

TEST(Bdd, ImpliesOperator) {
  BddManager mgr(2);
  const NodeRef imp = mgr.bddImplies(mgr.var(0), mgr.var(1));
  EXPECT_TRUE(mgr.evaluate(imp, 0b00));
  EXPECT_TRUE(mgr.evaluate(imp, 0b10));
  EXPECT_FALSE(mgr.evaluate(imp, 0b01));
  EXPECT_TRUE(mgr.evaluate(imp, 0b11));
}

}  // namespace
}  // namespace mimostat
