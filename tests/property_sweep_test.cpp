// Parameterized property-style sweeps over randomly generated DTMCs:
// engine identities and reduction-soundness invariants that must hold for
// every model, not just the hand-picked ones.
#include <gtest/gtest.h>

#include "bdd/reachability.hpp"
#include "dtmc/builder.hpp"
#include "lump/bisim.hpp"
#include "mc/bounded.hpp"
#include "mc/transient.hpp"
#include "mc/unbounded.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

class RandomChainProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  RandomChainProperties()
      : model_(test::randomModel(35, 3, GetParam())),
        dtmc_(dtmc::buildExplicit(model_).dtmc) {}

  test::MatrixModel model_;
  dtmc::ExplicitDtmc dtmc_;
};

TEST_P(RandomChainProperties, TransientStaysNormalized) {
  auto pi = dtmc_.initialDistribution();
  std::vector<double> next(pi.size());
  for (int t = 0; t < 40; ++t) {
    dtmc_.multiplyLeft(pi, next);
    pi.swap(next);
    double total = 0.0;
    for (const double p : pi) total += p;
    ASSERT_NEAR(total, 1.0, 1e-9) << "t=" << t;
  }
}

TEST_P(RandomChainProperties, BoundedFinallyMonotoneAndBounded) {
  const auto psi = dtmc_.evalAtom(model_, "target");
  double previous = -1.0;
  for (const std::uint64_t k : {0ULL, 1ULL, 3ULL, 6ULL, 12ULL, 24ULL}) {
    const double v = mc::fromInitial(dtmc_, mc::boundedFinally(dtmc_, psi, k));
    ASSERT_GE(v, previous - 1e-12);
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0 + 1e-12);
    previous = v;
  }
}

TEST_P(RandomChainProperties, GloballyFinallyComplement) {
  const auto target = dtmc_.evalAtom(model_, "target");
  const la::BitVector notTarget = ~target;
  const auto g = mc::boundedGlobally(dtmc_, notTarget, 9);
  const auto f = mc::boundedFinally(dtmc_, target, 9);
  for (std::size_t s = 0; s < g.size(); ++s) {
    ASSERT_NEAR(g[s] + f[s], 1.0, 1e-10);
  }
}

TEST_P(RandomChainProperties, UnboundedDominatesBounded) {
  const auto psi = dtmc_.evalAtom(model_, "target");
  const auto unbounded = mc::reachProb(dtmc_, psi);
  const auto bounded = mc::boundedFinally(dtmc_, psi, 50);
  for (std::size_t s = 0; s < bounded.size(); ++s) {
    ASSERT_LE(bounded[s], unbounded.stateValues[s] + 1e-9);
  }
}

TEST_P(RandomChainProperties, LumpingPreservesRewardTransients) {
  const auto reward = dtmc_.evalReward(model_, "");
  const auto keys = lump::keysFromRewardAndLabels(reward, {});
  const auto lumped = lump::lump(dtmc_, keys);
  std::vector<double> quotientReward(lumped.quotient.numStates());
  for (std::uint32_t b = 0; b < lumped.quotient.numStates(); ++b) {
    quotientReward[b] = reward[lumped.representative[b]];
  }
  for (const std::uint64_t t : {2ULL, 8ULL, 21ULL}) {
    ASSERT_NEAR(mc::instantaneousReward(dtmc_, reward, t),
                mc::instantaneousReward(lumped.quotient, quotientReward, t),
                1e-9);
  }
}

TEST_P(RandomChainProperties, SymbolicReachabilityAgrees) {
  bdd::SymbolicSpace space(model_.layout().totalBits());
  const auto symbolic = bdd::buildSymbolic(model_, space, 1 << 16);
  ASSERT_EQ(symbolic.stateCount, static_cast<double>(dtmc_.numStates()));
}

TEST_P(RandomChainProperties, Prob0Prob1AreConsistentWithValues) {
  const auto psi = dtmc_.evalAtom(model_, "target");
  const la::BitVector phi(dtmc_.numStates(), true);
  const auto prob0 = mc::prob0States(dtmc_, phi, psi);
  const auto prob1 = mc::prob1States(dtmc_, phi, psi);
  const auto values = mc::reachProb(dtmc_, psi).stateValues;
  for (std::uint32_t s = 0; s < dtmc_.numStates(); ++s) {
    if (prob0.get(s)) ASSERT_NEAR(values[s], 0.0, 1e-12);
    if (prob1.get(s)) ASSERT_NEAR(values[s], 1.0, 1e-12);
    ASSERT_FALSE(prob0.get(s) && prob1.get(s));
  }
}

TEST_P(RandomChainProperties, LumpingIsIdempotent) {
  // Lumping the quotient with the inherited keys must not shrink it
  // further: the first pass already reached the coarsest refinement.
  const auto reward = dtmc_.evalReward(model_, "");
  const auto keys = lump::keysFromRewardAndLabels(reward, {});
  const auto once = lump::lump(dtmc_, keys);
  std::vector<double> quotientReward(once.quotient.numStates());
  for (std::uint32_t b = 0; b < once.quotient.numStates(); ++b) {
    quotientReward[b] = reward[once.representative[b]];
  }
  const auto twice = lump::lump(
      once.quotient, lump::keysFromRewardAndLabels(quotientReward, {}));
  ASSERT_EQ(twice.partition.numBlocks, once.partition.numBlocks);
}

TEST_P(RandomChainProperties, CumulativeRewardIsMonotoneAndConsistent) {
  const auto reward = dtmc_.evalReward(model_, "");
  double previous = 0.0;
  for (const std::uint64_t t : {1ULL, 4ULL, 16ULL, 64ULL}) {
    const double c = mc::cumulativeReward(dtmc_, reward, t);
    ASSERT_GE(c, previous - 1e-12);  // nonnegative rewards accumulate
    previous = c;
  }
  // C<=k equals the sum of instantaneous rewards at 0..k-1.
  double manual = 0.0;
  for (std::uint64_t t = 0; t < 8; ++t) {
    manual += mc::instantaneousReward(dtmc_, reward, t);
  }
  ASSERT_NEAR(mc::cumulativeReward(dtmc_, reward, 8), manual, 1e-9);
}

TEST_P(RandomChainProperties, UntilDecomposition) {
  // P(phi U<=k psi) >= P(psi now) and <= P(F<=k psi), for any phi.
  const auto psi = dtmc_.evalAtom(model_, "target");
  la::BitVector phi(dtmc_.numStates());
  for (std::uint32_t s = 0; s < dtmc_.numStates(); ++s) {
    if ((s % 3) != 0) phi.set(s);  // arbitrary restriction
  }
  const auto until = mc::boundedUntil(dtmc_, phi, psi, 12);
  const auto finallyAll = mc::boundedFinally(dtmc_, psi, 12);
  for (std::uint32_t s = 0; s < dtmc_.numStates(); ++s) {
    ASSERT_GE(until[s], (psi.get(s) ? 1.0 : 0.0) - 1e-12);
    ASSERT_LE(until[s], finallyAll[s] + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainProperties,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
}  // namespace mimostat
