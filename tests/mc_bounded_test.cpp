#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "engine/thread_pool.hpp"
#include "la/exec.hpp"
#include "mc/bounded.hpp"
#include "mc/checker.hpp"
#include "pctl/parser.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

bool bitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// The pre-refactor mc::boundedUntil private loop, verbatim — the reference
/// the masked-SpMM path must reproduce bit for bit.
std::vector<double> legacyBoundedUntil(const dtmc::ExplicitDtmc& dtmc,
                                       const std::vector<std::uint8_t>& phi,
                                       const std::vector<std::uint8_t>& psi,
                                       std::uint64_t bound) {
  const std::uint32_t n = dtmc.numStates();
  std::vector<double> x(n);
  for (std::uint32_t s = 0; s < n; ++s) x[s] = psi[s] ? 1.0 : 0.0;
  std::vector<double> next(n);
  for (std::uint64_t j = 0; j < bound; ++j) {
    for (std::uint32_t s = 0; s < n; ++s) {
      if (psi[s]) {
        next[s] = 1.0;
      } else if (!phi[s]) {
        next[s] = 0.0;
      } else {
        double acc = 0.0;
        for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
          acc += dtmc.val()[k] * x[dtmc.col()[k]];
        }
        next[s] = acc;
      }
    }
    x.swap(next);
  }
  return x;
}

/// The pre-refactor mc::nextProb skip loop, verbatim.
std::vector<double> legacyNextProb(const dtmc::ExplicitDtmc& dtmc,
                                   const std::vector<std::uint8_t>& psi) {
  const std::uint32_t n = dtmc.numStates();
  std::vector<double> x(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    double acc = 0.0;
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      if (psi[dtmc.col()[k]]) acc += dtmc.val()[k];
    }
    x[s] = acc;
  }
  return x;
}

TEST(Bounded, FinallyOnLineNeedsExactlyDistanceSteps) {
  const auto model = test::lineModel(6);
  const auto d = dtmc::buildExplicit(model).dtmc;
  la::BitVector psi(6);
  psi.set(5);
  // From state 0 the target is 5 steps away.
  EXPECT_NEAR(mc::boundedFinally(d, psi, 4)[0], 0.0, 1e-15);
  EXPECT_NEAR(mc::boundedFinally(d, psi, 5)[0], 1.0, 1e-15);
  EXPECT_NEAR(mc::boundedFinally(d, psi, 100)[0], 1.0, 1e-15);
}

TEST(Bounded, MonotoneInBound) {
  const auto model = test::randomModel(25, 3, 17);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto psi = d.evalAtom(model, "target");
  double prev = -1.0;
  for (const std::uint64_t k : {0ULL, 1ULL, 2ULL, 4ULL, 8ULL, 16ULL}) {
    const double v = mc::fromInitial(d, mc::boundedFinally(d, psi, k));
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(Bounded, GloballyIsComplementOfFinallyNot) {
  const auto model = test::randomModel(20, 3, 31);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto target = d.evalAtom(model, "target");
  const la::BitVector notTarget = ~target;
  for (const std::uint64_t k : {0ULL, 3ULL, 7ULL}) {
    const auto g = mc::boundedGlobally(d, notTarget, k);
    const auto f = mc::boundedFinally(d, target, k);
    for (std::size_t s = 0; s < g.size(); ++s) {
      EXPECT_NEAR(g[s], 1.0 - f[s], 1e-12);
    }
  }
}

TEST(Bounded, UntilZeroBoundIsPsiIndicator) {
  const auto model = test::randomModel(10, 2, 3);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto psi = d.evalAtom(model, "target");
  const la::BitVector phi(d.numStates(), true);
  const auto x = mc::boundedUntil(d, phi, psi, 0);
  for (std::size_t s = 0; s < x.size(); ++s) {
    EXPECT_EQ(x[s], psi.get(s) ? 1.0 : 0.0);
  }
}

TEST(Bounded, UntilBlockedByPhi) {
  // 0 -> 1 -> 2(target); phi excludes state 1, so P(phi U target) from 0 is
  // 0 for every bound.
  test::MatrixModel model({{0, 1, 0}, {0, 0, 1}, {0, 0, 1}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  la::BitVector phi = la::BitVector::fromBytes({1, 0, 1});
  const la::BitVector psi = la::BitVector::fromBytes({0, 0, 1});
  EXPECT_NEAR(mc::boundedUntil(d, phi, psi, 10)[0], 0.0, 1e-15);
  // With phi allowing state 1 it reaches in 2 steps.
  phi.set(1);
  EXPECT_NEAR(mc::boundedUntil(d, phi, psi, 2)[0], 1.0, 1e-15);
}

TEST(Bounded, GamblersRuinSymmetric) {
  // Fair game from the midpoint: hitting 0 within k steps has the same
  // probability as hitting n within k steps.
  const auto model = test::gamblersRuin(6, 0.5, 3);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  la::BitVector ruin(d.numStates());
  la::BitVector win(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, varIdx) == 0) ruin.set(s);
    if (d.varValue(s, varIdx) == 6) win.set(s);
  }
  for (const std::uint64_t k : {3ULL, 9ULL, 30ULL}) {
    EXPECT_NEAR(mc::fromInitial(d, mc::boundedFinally(d, ruin, k)),
                mc::fromInitial(d, mc::boundedFinally(d, win, k)), 1e-12);
  }
}

TEST(Bounded, NextProbability) {
  const auto model = test::twoStateChain(0.3, 0.4);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const la::BitVector psi = la::BitVector::fromBytes({0, 1});
  const auto x = mc::nextProb(d, psi);
  EXPECT_NEAR(x[0], 0.3, 1e-15);
  EXPECT_NEAR(x[1], 0.6, 1e-15);
}

TEST(Bounded, FromInitialWeighsDistribution) {
  // Only the two absorbing initial states are reachable.
  test::MatrixModel model({{1.0, 0, 0}, {0, 1.0, 0}, {0, 0, 1.0}}, {0, 1});
  const auto d = dtmc::buildExplicit(model).dtmc;
  ASSERT_EQ(d.numStates(), 2u);
  const std::vector<double> values{1.0, 0.5};
  EXPECT_NEAR(mc::fromInitial(d, values), 0.75, 1e-15);
}

// ------------------------------------------ masked-SpMM path vs legacy loops

TEST(Bounded, MaskedKernelMatchesLegacyLoopBitwise) {
  const auto model = test::randomModel(400, 4, 71);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto psi = d.evalAtom(model, "target");
  const std::vector<std::uint8_t> psiBytes = psi.toBytes();
  std::vector<std::uint8_t> phiBytes(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) phiBytes[s] = s % 3 != 0;
  const la::BitVector phi = la::BitVector::fromBytes(phiBytes);
  for (const std::uint64_t k : {0ULL, 1ULL, 7ULL, 33ULL}) {
    EXPECT_TRUE(bitEqual(mc::boundedUntil(d, phi, psi, k),
                         legacyBoundedUntil(d, phiBytes, psiBytes, k)))
        << "U<=" << k;
    EXPECT_TRUE(bitEqual(mc::boundedFinally(d, psi, k),
                         legacyBoundedUntil(
                             d, std::vector<std::uint8_t>(d.numStates(), 1),
                             psiBytes, k)))
        << "F<=" << k;
  }
  EXPECT_TRUE(bitEqual(mc::nextProb(d, psi), legacyNextProb(d, psiBytes)));
}

/// Per-property reference values via the verbatim legacy loops.
std::vector<double> legacyReference(const dtmc::ExplicitDtmc& d,
                                    const std::vector<std::uint8_t>& target,
                                    const std::vector<std::uint8_t>& phi) {
  const std::vector<std::uint8_t> all(d.numStates(), 1);
  std::vector<double> expected;
  expected.push_back(
      mc::fromInitial(d, legacyBoundedUntil(d, all, target, 5)));
  expected.push_back(
      mc::fromInitial(d, legacyBoundedUntil(d, all, target, 12)));
  {
    // G<=9 !target = 1 - F<=9 target (legacy boundedGlobally semantics).
    auto g = legacyBoundedUntil(d, all, target, 9);
    for (double& v : g) v = 1.0 - v;
    expected.push_back(mc::fromInitial(d, g));
  }
  expected.push_back(
      mc::fromInitial(d, legacyBoundedUntil(d, phi, target, 12)));
  expected.push_back(mc::fromInitial(d, legacyNextProb(d, target)));
  return expected;
}

TEST(Bounded, BatchedPlanBitIdenticalToPerFormulaAt128Threads) {
  // Five bounded formulas — shared psi at two thresholds, a complemented
  // globally, a phi-constrained until, and a next — evaluated (a) by the
  // verbatim legacy per-formula loops and (b) as columns of one masked
  // SpMM traversal via Checker::checkAll, sequentially and on 1/2/8-thread
  // pools. The contract is bitwise identity, not tolerance.
  const auto model = test::randomModel(600, 5, 101);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto target = d.evalAtom(model, "target");

  const std::vector<std::string> texts{
      "P=? [ F<=5 \"target\" ]",    "P=? [ F<=12 \"target\" ]",
      "P=? [ G<=9 !\"target\" ]",   "P=? [ (s<400 & !(s=0)) U<=12 \"target\" ]",
      "P=? [ X \"target\" ]",
  };
  std::vector<pctl::Property> properties;
  for (const auto& t : texts) properties.push_back(pctl::parseProperty(t));

  // The reference phi mirrors the parsed until's "(s<400 & !(s=0))".
  const auto varIdx = d.varLayout().indexOf("s");
  std::vector<std::uint8_t> phi(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    phi[s] = d.varValue(s, varIdx) < 400 && d.varValue(s, varIdx) != 0;
  }
  const std::vector<double> expected =
      legacyReference(d, target.toBytes(), phi);

  const auto runAll = [&](const la::Exec& exec) {
    mc::CheckOptions options;
    options.exec = exec;
    const mc::Checker checker(d, model, options);
    pctl::PlanStats stats;
    const auto results = checker.checkAll(properties, {}, &stats);
    // 5 formulas, every one batched into the single shared traversal.
    EXPECT_EQ(stats.traversalsSaved, (5u + 12u + 9u + 12u + 1u) - 12u);
    std::vector<double> values;
    for (const auto& r : results) {
      EXPECT_TRUE(r.ok()) << r.error;
      EXPECT_TRUE(r.batched);
      values.push_back(r.value);
    }
    return values;
  };

  EXPECT_TRUE(bitEqual(runAll({}), expected));
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::ThreadPool pool(threads);
    la::Exec exec;
    exec.runner = engine::laRunnerFor(pool);
    exec.parallelThresholdNnz = 1;  // force the parallel kernels
    EXPECT_TRUE(bitEqual(runAll(exec), expected)) << threads << " threads";
  }
}

TEST(Bounded, PlanDedupSharesColumnsAcrossThresholds) {
  const auto model = test::randomModel(200, 4, 303);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  std::vector<pctl::Property> properties{
      pctl::parseProperty("P=? [ F<=4 \"target\" ]"),
      pctl::parseProperty("P=? [ F<=11 \"target\" ]"),
      pctl::parseProperty("P=? [ G<=7 !\"target\" ]"),
  };
  pctl::PlanStats stats;
  const auto results = checker.checkAll(properties, {}, &stats);
  // One mask, one column, three readouts: per-formula would traverse
  // 4 + 11 + 7 steps, the shared column traverses 11.
  EXPECT_EQ(stats.tasksPlanned, 3u);  // mask + column + group task
  EXPECT_EQ(stats.traversalsSaved, 11u);
  const std::vector<std::uint8_t> target =
      d.evalAtom(model, "target").toBytes();
  const std::vector<std::uint8_t> all(d.numStates(), 1);
  EXPECT_TRUE(bitEqual(results[0].stateValues,
                       legacyBoundedUntil(d, all, target, 4)));
  EXPECT_TRUE(bitEqual(results[1].stateValues,
                       legacyBoundedUntil(d, all, target, 11)));
  auto g = legacyBoundedUntil(d, all, target, 7);
  for (double& v : g) v = 1.0 - v;
  EXPECT_TRUE(bitEqual(results[2].stateValues, g));
}

TEST(Bounded, CheckAllIsolatesBrokenProperties) {
  const auto model = test::randomModel(60, 3, 11);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const std::vector<pctl::Property> properties{
      pctl::parseProperty("P=? [ F<=5 \"target\" ]"),
      pctl::parseProperty("P=? [ F<=5 bogus>2 ]"),  // unknown variable
      pctl::parseProperty("P=? [ F<=8 \"target\" ]"),
  };
  const auto results = checker.checkAll(properties);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("bogus"), std::string::npos);
  EXPECT_TRUE(results[2].ok());
  // The healthy siblings still match the per-formula path bitwise.
  const auto target = d.evalAtom(model, "target");
  EXPECT_TRUE(bitEqual(results[2].stateValues,
                       mc::boundedFinally(d, target, 8)));
}

TEST(Bounded, TransientGroupIsolatesBrokenRewards) {
  // A reward structure that fails to evaluate must error only the entries
  // referencing it; sibling horizons still ride the shared sweep.
  class ThrowingRewardModel : public test::MatrixModel {
   public:
    using test::MatrixModel::MatrixModel;
    [[nodiscard]] double stateReward(const dtmc::State& s,
                                     std::string_view name) const override {
      if (name == "missing") throw std::runtime_error("no reward 'missing'");
      return test::MatrixModel::stateReward(s, name);
    }
  };
  ThrowingRewardModel model({{0.5, 0.5}, {0.2, 0.8}});
  model.withRewards({0.0, 1.0});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const auto results = checker.checkAll({
      pctl::parseProperty("R=? [ I=5 ]"),
      pctl::parseProperty("R{\"missing\"}=? [ I=5 ]"),
      pctl::parseProperty("R=? [ C<=4 ]"),
  });
  ASSERT_TRUE(results[0].ok()) << results[0].error;
  EXPECT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error.find("missing"), std::string::npos);
  ASSERT_TRUE(results[2].ok()) << results[2].error;
  EXPECT_GT(results[0].value, 0.0);
  EXPECT_GT(results[2].value, 0.0);
  EXPECT_TRUE(results[0].batched);
  EXPECT_FALSE(results[1].batched);
}

TEST(Bounded, DuplicateSinglesShareOneSolveBitwise) {
  const auto model = test::gamblersRuin(30, 0.45, 15);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const std::vector<pctl::Property> properties{
      pctl::parseProperty("P=? [ F s=30 ]"),
      pctl::parseProperty("P=? [ F s=30 ]"),  // structurally identical
  };
  pctl::PlanStats stats;
  const auto results = checker.checkAll(properties, {}, &stats);
  EXPECT_EQ(stats.tasksDeduped, 1u);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_TRUE(results[0].batched);
  EXPECT_TRUE(results[1].batched);
  EXPECT_EQ(results[0].value, results[1].value);
  EXPECT_TRUE(bitEqual(results[0].stateValues, results[1].stateValues));
  // The copy equals an independent solve bit for bit.
  const mc::CheckResult solo = checker.check("P=? [ F s=30 ]");
  EXPECT_EQ(solo.value, results[1].value);
}

TEST(Bounded, BoundedProbabilityBoundsDecideSatisfied) {
  // P>=theta [...] through the batched path must evaluate the comparison.
  const auto model = test::lineModel(4);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const std::vector<pctl::Property> properties{
      pctl::parseProperty("P>=0.5 [ F<=3 s=3 ]"),  // reaches: satisfied
      pctl::parseProperty("P>=0.5 [ F<=2 s=3 ]"),  // too short: violated
  };
  const auto results = checker.checkAll(properties);
  ASSERT_TRUE(results[0].ok());
  ASSERT_TRUE(results[1].ok());
  EXPECT_TRUE(results[0].satisfied);
  EXPECT_FALSE(results[1].satisfied);
}

}  // namespace
}  // namespace mimostat
