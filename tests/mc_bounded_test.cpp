#include <gtest/gtest.h>

#include <cmath>

#include "dtmc/builder.hpp"
#include "mc/bounded.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

TEST(Bounded, FinallyOnLineNeedsExactlyDistanceSteps) {
  const auto model = test::lineModel(6);
  const auto d = dtmc::buildExplicit(model).dtmc;
  std::vector<std::uint8_t> psi(6, 0);
  psi[5] = 1;
  // From state 0 the target is 5 steps away.
  EXPECT_NEAR(mc::boundedFinally(d, psi, 4)[0], 0.0, 1e-15);
  EXPECT_NEAR(mc::boundedFinally(d, psi, 5)[0], 1.0, 1e-15);
  EXPECT_NEAR(mc::boundedFinally(d, psi, 100)[0], 1.0, 1e-15);
}

TEST(Bounded, MonotoneInBound) {
  const auto model = test::randomModel(25, 3, 17);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto psi = d.evalAtom(model, "target");
  double prev = -1.0;
  for (const std::uint64_t k : {0ULL, 1ULL, 2ULL, 4ULL, 8ULL, 16ULL}) {
    const double v = mc::fromInitial(d, mc::boundedFinally(d, psi, k));
    EXPECT_GE(v, prev - 1e-12);
    prev = v;
  }
}

TEST(Bounded, GloballyIsComplementOfFinallyNot) {
  const auto model = test::randomModel(20, 3, 31);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto target = d.evalAtom(model, "target");
  std::vector<std::uint8_t> notTarget(target.size());
  for (std::size_t i = 0; i < target.size(); ++i) notTarget[i] = !target[i];
  for (const std::uint64_t k : {0ULL, 3ULL, 7ULL}) {
    const auto g = mc::boundedGlobally(d, notTarget, k);
    const auto f = mc::boundedFinally(d, target, k);
    for (std::size_t s = 0; s < g.size(); ++s) {
      EXPECT_NEAR(g[s], 1.0 - f[s], 1e-12);
    }
  }
}

TEST(Bounded, UntilZeroBoundIsPsiIndicator) {
  const auto model = test::randomModel(10, 2, 3);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto psi = d.evalAtom(model, "target");
  const std::vector<std::uint8_t> phi(d.numStates(), 1);
  const auto x = mc::boundedUntil(d, phi, psi, 0);
  for (std::size_t s = 0; s < x.size(); ++s) {
    EXPECT_EQ(x[s], psi[s] ? 1.0 : 0.0);
  }
}

TEST(Bounded, UntilBlockedByPhi) {
  // 0 -> 1 -> 2(target); phi excludes state 1, so P(phi U target) from 0 is
  // 0 for every bound.
  test::MatrixModel model({{0, 1, 0}, {0, 0, 1}, {0, 0, 1}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  std::vector<std::uint8_t> phi{1, 0, 1};
  std::vector<std::uint8_t> psi{0, 0, 1};
  EXPECT_NEAR(mc::boundedUntil(d, phi, psi, 10)[0], 0.0, 1e-15);
  // With phi allowing state 1 it reaches in 2 steps.
  phi[1] = 1;
  EXPECT_NEAR(mc::boundedUntil(d, phi, psi, 2)[0], 1.0, 1e-15);
}

TEST(Bounded, GamblersRuinSymmetric) {
  // Fair game from the midpoint: hitting 0 within k steps has the same
  // probability as hitting n within k steps.
  const auto model = test::gamblersRuin(6, 0.5, 3);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  std::vector<std::uint8_t> ruin(d.numStates(), 0);
  std::vector<std::uint8_t> win(d.numStates(), 0);
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    ruin[s] = d.varValue(s, varIdx) == 0;
    win[s] = d.varValue(s, varIdx) == 6;
  }
  for (const std::uint64_t k : {3ULL, 9ULL, 30ULL}) {
    EXPECT_NEAR(mc::fromInitial(d, mc::boundedFinally(d, ruin, k)),
                mc::fromInitial(d, mc::boundedFinally(d, win, k)), 1e-12);
  }
}

TEST(Bounded, NextProbability) {
  const auto model = test::twoStateChain(0.3, 0.4);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const std::vector<std::uint8_t> psi{0, 1};
  const auto x = mc::nextProb(d, psi);
  EXPECT_NEAR(x[0], 0.3, 1e-15);
  EXPECT_NEAR(x[1], 0.6, 1e-15);
}

TEST(Bounded, FromInitialWeighsDistribution) {
  // Only the two absorbing initial states are reachable.
  test::MatrixModel model({{1.0, 0, 0}, {0, 1.0, 0}, {0, 0, 1.0}}, {0, 1});
  const auto d = dtmc::buildExplicit(model).dtmc;
  ASSERT_EQ(d.numStates(), 2u);
  const std::vector<double> values{1.0, 0.5};
  EXPECT_NEAR(mc::fromInitial(d, values), 0.75, 1e-15);
}

}  // namespace
}  // namespace mimostat
