#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "dtmc/builder.hpp"
#include "dtmc/io.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

TEST(VarLayout, PackUnpackRoundTrip) {
  dtmc::VarLayout layout({{"a", 0, 6}, {"b", -2, 2}, {"c", 0, 1}});
  EXPECT_TRUE(layout.fitsInU64());
  EXPECT_EQ(layout.totalBits(), 3 + 3 + 1);
  const dtmc::State s{5, -1, 1};
  EXPECT_EQ(layout.unpack(layout.pack(s)), s);
  EXPECT_EQ(layout.indexOf("b"), 1u);
  EXPECT_EQ(layout.tryIndexOf("missing"), dtmc::VarLayout::npos);
  EXPECT_NEAR(layout.potentialStateCount(), 7.0 * 5.0 * 2.0, 1e-9);
}

TEST(VarLayout, FormatState) {
  dtmc::VarLayout layout({{"x", 0, 3}, {"flag", 0, 1}});
  EXPECT_EQ(formatState(layout, {2, 1}), "x=2, flag=1");
}

TEST(NormalizeTransitions, MergesDuplicates) {
  std::vector<dtmc::Transition> ts;
  ts.push_back({0.25, {1}});
  ts.push_back({0.25, {1}});
  ts.push_back({0.5, {0}});
  const double mass = dtmc::normalizeTransitions(ts, 0.0);
  EXPECT_NEAR(mass, 1.0, 1e-15);
  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts[0].target, dtmc::State{0});
  EXPECT_NEAR(ts[1].prob, 0.5, 1e-15);
}

TEST(NormalizeTransitions, FloorDropsAndRenormalizes) {
  std::vector<dtmc::Transition> ts;
  ts.push_back({1e-20, {0}});
  ts.push_back({0.5, {1}});
  ts.push_back({0.5 - 1e-20, {2}});
  dtmc::normalizeTransitions(ts, 1e-15);
  ASSERT_EQ(ts.size(), 2u);
  double total = 0.0;
  for (const auto& t : ts) total += t.prob;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Builder, TwoStateChain) {
  const auto model = test::twoStateChain(0.3, 0.4);
  const auto result = dtmc::buildExplicit(model);
  EXPECT_EQ(result.dtmc.numStates(), 2u);
  EXPECT_EQ(result.dtmc.numTransitions(), 4u);
  EXPECT_LT(result.dtmc.maxRowDeviation(), 1e-12);
  EXPECT_NEAR(result.dtmc.initialDistribution()[0], 1.0, 1e-15);
}

TEST(Builder, ReachabilityIterationsOfLine) {
  // A line of n states needs n frontier expansions to fixpoint.
  const auto model = test::lineModel(10);
  const auto result = dtmc::buildExplicit(model);
  EXPECT_EQ(result.dtmc.numStates(), 10u);
  EXPECT_EQ(result.reachabilityIterations, 10u);
}

TEST(Builder, UnreachableStatesExcluded) {
  // Matrix has 5 states but only 0 and 1 communicate from the start.
  test::MatrixModel model({{0.5, 0.5, 0, 0, 0},
                           {1.0, 0, 0, 0, 0},
                           {0, 0, 1.0, 0, 0},
                           {0, 0, 0, 1.0, 0},
                           {0, 0, 0, 0, 1.0}});
  const auto result = dtmc::buildExplicit(model);
  EXPECT_EQ(result.dtmc.numStates(), 2u);
}

TEST(Builder, MaxStatesThrows) {
  dtmc::BuildOptions options;
  options.maxStates = 5;
  const auto model = test::lineModel(10);
  EXPECT_THROW(dtmc::buildExplicit(model, options), std::runtime_error);
}

TEST(Builder, MultipleInitialStatesUniform) {
  test::MatrixModel model({{1.0, 0, 0}, {0, 1.0, 0}, {0, 0, 1.0}}, {0, 2});
  const auto result = dtmc::buildExplicit(model);
  EXPECT_NEAR(result.dtmc.initialDistribution()[0], 0.5, 1e-15);
}

TEST(Builder, EvalAtomAndReward) {
  auto model = test::twoStateChain(0.5, 0.5);
  model.withLabel("one", {0, 1}).withRewards({0.0, 2.5});
  const auto result = dtmc::buildExplicit(model);
  const auto truth = result.dtmc.evalAtom(model, "one");
  const auto reward = result.dtmc.evalReward(model, "");
  // State order follows BFS from the initial state 0.
  EXPECT_FALSE(truth.get(0));
  EXPECT_TRUE(truth.get(1));
  EXPECT_EQ(reward[1], 2.5);
}

TEST(Builder, MultiplyLeftRightConsistent) {
  const auto model = test::randomModel(20, 3, 77);
  const auto result = dtmc::buildExplicit(model);
  std::vector<double> x(result.dtmc.numStates());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.01 * (i + 1);
  std::vector<double> left;
  std::vector<double> right;
  result.dtmc.multiplyLeft(x, left);
  result.dtmc.multiplyRight(x, right);
  // x P 1 == x . (P 1) == sum(x) since rows sum to 1.
  double sumLeft = 0.0;
  double sumX = 0.0;
  double dotRight = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sumLeft += left[i];
    sumX += x[i];
  }
  std::vector<double> ones(x.size(), 1.0);
  std::vector<double> pOnes;
  result.dtmc.multiplyRight(ones, pOnes);
  for (std::size_t i = 0; i < x.size(); ++i) dotRight += x[i] * pOnes[i];
  EXPECT_NEAR(sumLeft, sumX, 1e-10);
  EXPECT_NEAR(dotRight, sumX, 1e-10);
}

TEST(CountReachable, MatchesExplicitBuilder) {
  const auto model = test::randomModel(50, 4, 123);
  const auto explicitResult = dtmc::buildExplicit(model);
  const auto countResult = dtmc::countReachable(model);
  EXPECT_EQ(countResult.numStates, explicitResult.dtmc.numStates());
  EXPECT_EQ(countResult.numTransitions, explicitResult.dtmc.numTransitions());
  EXPECT_EQ(countResult.reachabilityIterations,
            explicitResult.reachabilityIterations);
}

TEST(CountReachable, MaxStatesThrows) {
  const auto model = test::lineModel(100);
  EXPECT_THROW(dtmc::countReachable(model, 10), std::runtime_error);
}

TEST(Io, TraAndStaFormats) {
  const auto model = test::twoStateChain(0.3, 0.4);
  const auto result = dtmc::buildExplicit(model);
  std::ostringstream tra;
  dtmc::writeTra(result.dtmc, tra);
  EXPECT_NE(tra.str().find("2 4"), std::string::npos);
  // Probabilities are written with max_digits10 for exact round trips.
  EXPECT_NE(tra.str().find("0 1 0.2999999999999999"), std::string::npos);
  std::ostringstream sta;
  dtmc::writeSta(result.dtmc, sta);
  EXPECT_NE(sta.str().find("(s)"), std::string::npos);
  EXPECT_NE(sta.str().find("0:(0)"), std::string::npos);
  std::ostringstream dot;
  dtmc::writeDot(result.dtmc, dot);
  EXPECT_NE(dot.str().find("digraph"), std::string::npos);
}

}  // namespace
}  // namespace mimostat
