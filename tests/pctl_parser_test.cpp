#include <gtest/gtest.h>

#include "pctl/ast.hpp"
#include "pctl/parser.hpp"

namespace mimostat {
namespace {

using pctl::parseProperty;
using pctl::parseStateFormula;
using pctl::ParseError;

TEST(Parser, PaperPropertyP1) {
  const auto p = parseProperty("P=? [ G<=300 !flag ]");
  ASSERT_EQ(p.kind, pctl::Property::Kind::kProb);
  EXPECT_TRUE(p.prob.isQuery);
  EXPECT_EQ(p.prob.path.kind, pctl::PathFormula::Kind::kGlobally);
  ASSERT_TRUE(p.prob.path.bound.has_value());
  EXPECT_EQ(*p.prob.path.bound, 300u);
  EXPECT_EQ(p.prob.path.lhs->kind, pctl::StateFormula::Kind::kNot);
}

TEST(Parser, PaperPropertyP2) {
  const auto p = parseProperty("R=? [ I=300 ]");
  ASSERT_EQ(p.kind, pctl::Property::Kind::kReward);
  EXPECT_EQ(p.reward.kind, pctl::RewardQuery::Kind::kInstantaneous);
  EXPECT_EQ(p.reward.bound, 300u);
  EXPECT_TRUE(p.reward.rewardName.empty());
}

TEST(Parser, PaperPropertyP3) {
  const auto p = parseProperty("P=? [ F<=300 errs>1 ]");
  EXPECT_EQ(p.prob.path.kind, pctl::PathFormula::Kind::kFinally);
  const auto& sf = *p.prob.path.lhs;
  EXPECT_EQ(sf.kind, pctl::StateFormula::Kind::kVarCmp);
  EXPECT_EQ(sf.name, "errs");
  EXPECT_EQ(sf.op, pctl::CmpOp::kGt);
  EXPECT_EQ(sf.value, 1);
}

TEST(Parser, NamedReward) {
  const auto p = parseProperty("R{\"nc4\"}=? [ I=100 ]");
  EXPECT_EQ(p.reward.rewardName, "nc4");
}

TEST(Parser, CumulativeAndSteadyRewards) {
  EXPECT_EQ(parseProperty("R=? [ C<=50 ]").reward.kind,
            pctl::RewardQuery::Kind::kCumulative);
  EXPECT_EQ(parseProperty("R=? [ S ]").reward.kind,
            pctl::RewardQuery::Kind::kSteadyState);
}

TEST(Parser, ReachabilityReward) {
  const auto p = parseProperty("R=? [ F s=0 | s=6 ]");
  ASSERT_EQ(p.reward.kind, pctl::RewardQuery::Kind::kReachability);
  ASSERT_TRUE(p.reward.target != nullptr);
  EXPECT_EQ(p.reward.target->kind, pctl::StateFormula::Kind::kOr);
  // Round trip.
  EXPECT_EQ(pctl::toString(parseProperty(pctl::toString(p))),
            pctl::toString(p));
}

TEST(Parser, ProbabilityBound) {
  const auto p = parseProperty("P>=0.99 [ F<=10 \"error\" ]");
  EXPECT_FALSE(p.prob.isQuery);
  EXPECT_EQ(p.prob.boundOp, pctl::CmpOp::kGe);
  EXPECT_NEAR(p.prob.boundValue, 0.99, 1e-15);
  EXPECT_EQ(p.prob.path.lhs->kind, pctl::StateFormula::Kind::kAtom);
  EXPECT_EQ(p.prob.path.lhs->name, "error");
}

TEST(Parser, UntilWithBound) {
  const auto p = parseProperty("P=? [ !flag U<=20 errs>=2 ]");
  EXPECT_EQ(p.prob.path.kind, pctl::PathFormula::Kind::kUntil);
  ASSERT_TRUE(p.prob.path.bound.has_value());
  EXPECT_EQ(*p.prob.path.bound, 20u);
}

TEST(Parser, UnboundedOperators) {
  EXPECT_FALSE(parseProperty("P=? [ F flag ]").prob.path.bound.has_value());
  EXPECT_FALSE(parseProperty("P=? [ G !flag ]").prob.path.bound.has_value());
  EXPECT_FALSE(
      parseProperty("P=? [ true U flag ]").prob.path.bound.has_value());
}

TEST(Parser, NextOperator) {
  const auto p = parseProperty("P=? [ X flag ]");
  EXPECT_EQ(p.prob.path.kind, pctl::PathFormula::Kind::kNext);
}

TEST(Parser, PrecedenceNotBindsTighterThanAnd) {
  const auto f = parseStateFormula("!a & b");
  ASSERT_EQ(f->kind, pctl::StateFormula::Kind::kAnd);
  EXPECT_EQ(f->lhs->kind, pctl::StateFormula::Kind::kNot);
}

TEST(Parser, PrecedenceAndBindsTighterThanOr) {
  const auto f = parseStateFormula("a | b & c");
  ASSERT_EQ(f->kind, pctl::StateFormula::Kind::kOr);
  EXPECT_EQ(f->rhs->kind, pctl::StateFormula::Kind::kAnd);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const auto f = parseStateFormula("(a | b) & c");
  ASSERT_EQ(f->kind, pctl::StateFormula::Kind::kAnd);
  EXPECT_EQ(f->lhs->kind, pctl::StateFormula::Kind::kOr);
}

TEST(Parser, TrueFalseLiterals) {
  EXPECT_EQ(parseStateFormula("true")->kind, pctl::StateFormula::Kind::kTrue);
  EXPECT_EQ(parseStateFormula("false")->kind, pctl::StateFormula::Kind::kFalse);
}

TEST(Parser, AllComparisonOps) {
  for (const auto* text :
       {"x=1", "x!=1", "x<1", "x<=1", "x>1", "x>=1"}) {
    const auto f = parseStateFormula(text);
    EXPECT_EQ(f->kind, pctl::StateFormula::Kind::kVarCmp) << text;
  }
}

TEST(Parser, RoundTripThroughToString) {
  for (const auto* text : {
           "P=? [ G<=300 !flag ]",
           "R=? [ I=300 ]",
           "P=? [ F<=300 errs>1 ]",
           "P>=0.5 [ !flag U<=20 errs>=2 ]",
           "R{\"nc4\"}=? [ C<=100 ]",
           "P=? [ X flag & count<=6 ]",
       }) {
    const auto parsed = parseProperty(text);
    const auto printed = pctl::toString(parsed);
    const auto reparsed = parseProperty(printed);
    EXPECT_EQ(pctl::toString(reparsed), printed) << text;
  }
}

TEST(Parser, ErrorsAreReported) {
  EXPECT_THROW(parseProperty("P=? [ G<=300 !flag"), ParseError);
  EXPECT_THROW(parseProperty("Q=? [ F flag ]"), ParseError);
  EXPECT_THROW(parseProperty("P=? [ F<=x flag ]"), ParseError);
  EXPECT_THROW(parseProperty("R=? [ I=1 ] extra"), ParseError);
  EXPECT_THROW(parseProperty("P=? [ flag ]"), ParseError);  // missing U
  EXPECT_THROW(parseStateFormula("a &"), ParseError);
  EXPECT_THROW(parseStateFormula("\"unterminated"), ParseError);
  EXPECT_THROW(parseProperty("P=? [ F<=1.5 flag ]"), ParseError);
}

TEST(Parser, ErrorPositionIsUseful) {
  try {
    parseProperty("P=? [ G<=300 @flag ]");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.position(), 13u);
  }
}

}  // namespace
}  // namespace mimostat
