#include <gtest/gtest.h>

#include "sim/ber_simulator.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

TEST(BerSimulator, CountsErrors) {
  auto rng = std::make_shared<util::Xoshiro256>(1);
  const sim::ErrorSource source = [rng](std::uint64_t) {
    return rng->nextDouble() < 0.1;
  };
  sim::BerRunOptions options;
  options.maxSteps = 100000;
  const auto result = sim::runBer(source, options);
  EXPECT_EQ(result.stepsRun, 100000u);
  EXPECT_NEAR(result.estimate(), 0.1, 0.01);
  EXPECT_FALSE(result.stoppedEarly);
}

TEST(BerSimulator, EarlyStopOnPrecision) {
  auto rng = std::make_shared<util::Xoshiro256>(2);
  const sim::ErrorSource source = [rng](std::uint64_t) {
    return rng->nextDouble() < 0.5;
  };
  sim::BerRunOptions options;
  options.maxSteps = 10'000'000;
  options.relPrecision = 0.05;
  options.checkInterval = 1000;
  const auto result = sim::runBer(source, options);
  EXPECT_TRUE(result.stoppedEarly);
  EXPECT_LT(result.stepsRun, 100000u);
  const auto interval = result.errors.wilson(0.95);
  EXPECT_LE(interval.width() / 2.0, 0.05 * result.estimate() * 1.2);
}

TEST(BerSimulator, NoEarlyStopWithoutErrors) {
  // Zero observed errors: the stopping rule must not fire (estimate = 0).
  const sim::ErrorSource source = [](std::uint64_t) { return false; };
  sim::BerRunOptions options;
  options.maxSteps = 50000;
  options.relPrecision = 0.1;
  const auto result = sim::runBer(source, options);
  EXPECT_FALSE(result.stoppedEarly);
  EXPECT_EQ(result.errors.successes(), 0u);
}

TEST(BerSimulator, ExpectedStepsForErrors) {
  EXPECT_EQ(sim::expectedStepsForErrors(0.01, 100), 10000u);
  // The paper's regime: a BER of 1e-7 needs ~1e8 steps per observed error —
  // the motivating infeasibility of pure simulation.
  EXPECT_EQ(sim::expectedStepsForErrors(1e-7, 10), 100'000'000u);
  EXPECT_EQ(sim::expectedStepsForErrors(0.0, 1), ~0ULL);
}

TEST(BerSimulator, StepIndexPassedThrough) {
  std::uint64_t lastStep = 0;
  const sim::ErrorSource source = [&lastStep](std::uint64_t step) {
    lastStep = step;
    return false;
  };
  sim::BerRunOptions options;
  options.maxSteps = 123;
  sim::runBer(source, options);
  EXPECT_EQ(lastStep, 122u);
}

}  // namespace
}  // namespace mimostat
