#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "engine/engine.hpp"
#include "engine/thread_pool.hpp"
#include "mc/checker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sweep/param_space.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "test_models.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

// ----------------------------------------------------------- histogram math

TEST(ObsHistogramBuckets, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(obs::histogramBucketIndex(v), v);
    EXPECT_EQ(obs::histogramBucketLowerBound(v), v);
    EXPECT_EQ(obs::histogramBucketUpperBound(v), v + 1);
  }
}

TEST(ObsHistogramBuckets, BoundsContainTheirValues) {
  util::Xoshiro256 rng(2024);
  for (int i = 0; i < 20000; ++i) {
    // Spread values across every octave, not just the top of the u64 range.
    const std::uint64_t value = rng() >> rng.nextBounded(64);
    const std::size_t bucket = obs::histogramBucketIndex(value);
    ASSERT_LT(bucket, obs::kHistogramBuckets);
    EXPECT_LE(obs::histogramBucketLowerBound(bucket), value);
    if (bucket + 1 < obs::kHistogramBuckets) {
      EXPECT_LT(value, obs::histogramBucketUpperBound(bucket));
    }
  }
}

TEST(ObsHistogramBuckets, BucketsTileTheRange) {
  // Consecutive buckets must tile [0, 2^64) with no gaps or overlaps, and
  // the index function must map each bucket's lower bound back to itself.
  for (std::size_t b = 0; b + 1 < obs::kHistogramBuckets; ++b) {
    EXPECT_EQ(obs::histogramBucketUpperBound(b),
              obs::histogramBucketLowerBound(b + 1));
    EXPECT_EQ(obs::histogramBucketIndex(obs::histogramBucketLowerBound(b)), b);
  }
}

TEST(ObsHistogram, PercentileLandsInOracleBucket) {
  obs::MetricsRegistry registry;
  const obs::Histogram hist = registry.histogram("test.latency_ns");

  util::Xoshiro256 rng(7);
  std::vector<std::uint64_t> values;
  values.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform-ish spread, the shape of real latency distributions.
    const std::uint64_t value = rng.nextBounded(1u << 20) >> rng.nextBounded(12);
    values.push_back(value);
    hist.record(value);
  }
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  const obs::HistogramSnapshot snap =
      registry.histogramSnapshot("test.latency_ns");
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.min, sorted.front());
  EXPECT_EQ(snap.max, sorted.back());
  std::uint64_t total = 0;
  for (const auto v : values) total += v;
  EXPECT_EQ(snap.sum, total);

  for (const double q : {0.10, 0.50, 0.90, 0.99, 1.0}) {
    // Nearest-rank oracle on the sorted vector.
    const auto rank = static_cast<std::size_t>(std::max<double>(
        1.0, std::ceil(q * static_cast<double>(sorted.size()))));
    const std::uint64_t exact = sorted[rank - 1];
    const double estimate = snap.percentile(q);
    EXPECT_EQ(obs::histogramBucketIndex(
                  static_cast<std::uint64_t>(estimate)),
              obs::histogramBucketIndex(exact))
        << "q=" << q << " estimate=" << estimate << " exact=" << exact;
    // Log-bucket guarantee: at most 25% relative error (plus interpolation
    // clamping at the observed max).
    EXPECT_LE(estimate, static_cast<double>(snap.max) + 1.0);
  }
}

TEST(ObsHistogram, EmptyAndSingleValue) {
  obs::MetricsRegistry registry;
  const obs::Histogram hist = registry.histogram("h");
  obs::HistogramSnapshot snap = registry.histogramSnapshot("h");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.percentile(0.5), 0.0);

  hist.record(777);
  snap = registry.histogramSnapshot("h");
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 777u);
  EXPECT_EQ(snap.max, 777u);
  EXPECT_EQ(obs::histogramBucketIndex(
                static_cast<std::uint64_t>(snap.percentile(0.5))),
            obs::histogramBucketIndex(777));
}

TEST(ObsHistogram, UnregisteredNameYieldsEmptySnapshot) {
  obs::MetricsRegistry registry;
  const obs::HistogramSnapshot snap = registry.histogramSnapshot("missing");
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(registry.snapshot().histogram("missing"), nullptr);
}

// ------------------------------------------------------ registry shard merge

void hammerRegistry(obs::MetricsRegistry& registry, std::size_t threads) {
  engine::ThreadPool pool(threads);
  const obs::Counter counter = registry.counter("test.events");
  const obs::Gauge gauge = registry.gauge("test.level");
  const obs::Histogram hist = registry.histogram("test.values");

  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kPerTask = 500;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (std::size_t t = 0; t < kTasks; ++t) {
    tasks.push_back([&, t] {
      for (std::uint64_t i = 0; i < kPerTask; ++i) {
        counter.inc();
        gauge.add(1);
        gauge.sub(1);
        hist.record(t * kPerTask + i);
      }
    });
  }
  pool.run(std::move(tasks));

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counterValue("test.events"), kTasks * kPerTask);
  EXPECT_EQ(snap.gaugeValue("test.level"), 0);
  const obs::HistogramSnapshot* values = snap.histogram("test.values");
  ASSERT_NE(values, nullptr);
  EXPECT_EQ(values->count, kTasks * kPerTask);
  EXPECT_EQ(values->min, 0u);
  EXPECT_EQ(values->max, kTasks * kPerTask - 1);
  // Sum of 0..N-1 — every recorded value accounted for exactly once across
  // all shards.
  const std::uint64_t n = kTasks * kPerTask;
  EXPECT_EQ(values->sum, n * (n - 1) / 2);
}

TEST(ObsRegistry, ShardMergeOneThread) {
  obs::MetricsRegistry registry;
  hammerRegistry(registry, 1);
}

TEST(ObsRegistry, ShardMergeTwoThreads) {
  obs::MetricsRegistry registry;
  hammerRegistry(registry, 2);
}

TEST(ObsRegistry, ShardMergeEightThreads) {
  obs::MetricsRegistry registry;
  hammerRegistry(registry, 8);
}

TEST(ObsRegistry, ResetZeroesButKeepsHandles) {
  obs::MetricsRegistry registry;
  const obs::Counter counter = registry.counter("c");
  const obs::Histogram hist = registry.histogram("h");
  counter.add(5);
  hist.record(123);
  registry.reset();
  EXPECT_EQ(registry.snapshot().counterValue("c"), 0u);
  EXPECT_EQ(registry.histogramSnapshot("h").count, 0u);
  // Handles issued before reset() still point at live storage.
  counter.add(2);
  hist.record(9);
  EXPECT_EQ(registry.snapshot().counterValue("c"), 2u);
  EXPECT_EQ(registry.histogramSnapshot("h").count, 1u);
}

TEST(ObsRegistry, DefaultConstructedHandlesAreInert) {
  const obs::Counter counter;
  const obs::Gauge gauge;
  const obs::Histogram hist;
  counter.inc();
  gauge.add(3);
  hist.record(1);  // must not crash
}

// ------------------------------------------------------------------- spans

TEST(ObsSpan, NestingAutoParentsOnSameThread) {
  obs::Tracer tracer;
  tracer.setEnabled(true);

  {
    obs::Span outer("outer", 0, tracer);
    ASSERT_NE(outer.id(), 0u);
    EXPECT_EQ(obs::currentSpanId(), outer.id());
    {
      obs::Span inner("inner", 0, tracer);
      EXPECT_EQ(obs::currentSpanId(), inner.id());
      obs::Span leaf("leaf", 0, tracer);
      leaf.stop();
      inner.stop();
      // Restored after the nested spans finish.
      EXPECT_EQ(obs::currentSpanId(), outer.id());
    }
  }
  EXPECT_EQ(obs::currentSpanId(), 0u);

  const std::vector<obs::TraceEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: outer, inner, leaf.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_STREQ(events[2].name, "leaf");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].parent, events[0].id);
  EXPECT_EQ(events[2].parent, events[1].id);
  for (const auto& event : events) {
    EXPECT_LE(event.startNs, event.endNs);
  }
}

TEST(ObsSpan, ExplicitParentOverridesThreadLocal) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  obs::Span outer("outer", 0, tracer);
  obs::Span child("child", 42, tracer);
  child.stop();
  outer.stop();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].parent, 42u);  // not outer.id()
}

TEST(ObsSpan, DisabledTracerRecordsNothingButStillTimes) {
  obs::Tracer tracer;
  obs::Span span("phase", 0, tracer);
  EXPECT_EQ(span.id(), 0u);
  EXPECT_GE(span.elapsedSeconds(), 0.0);
  const double seconds = span.stopSeconds();
  EXPECT_GE(seconds, 0.0);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(ObsSpan, StopIsIdempotent) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  obs::Span span("once", 0, tracer);
  span.stop();
  span.stop();
  span.stop();
  EXPECT_EQ(tracer.events().size(), 1u);
}

TEST(ObsSpan, ClearRestartsEpochAndIds) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  { obs::Span span("a", 0, tracer); }
  ASSERT_EQ(tracer.events().size(), 1u);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  { obs::Span span("b", 0, tracer); }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, 1u);  // id counter restarted
}

// ------------------------------------------------------------- trace writer

TEST(ObsTraceWriter, EmitsWellFormedChromeTraceJson) {
  obs::Tracer tracer;
  tracer.setEnabled(true);
  {
    obs::Span outer("engine.analyze", 0, tracer);
    obs::Span inner("dtmc.build", 0, tracer);
  }
  std::ostringstream out;
  obs::TraceWriter(tracer).write(out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"dtmc.build\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Structural sanity a JSON parser would enforce: balanced delimiters,
  // object at top level. (tools/obs/trace_smoke.py does the real
  // parse-back with a JSON library.)
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ObsTraceWriter, EmptyTracerStillValidJson) {
  obs::Tracer tracer;
  std::ostringstream out;
  obs::TraceWriter(tracer).write(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

// ----------------------------------------- determinism: tracing on vs off

TEST(ObsDeterminism, CheckerResultsBitIdenticalTracingOnVsOff) {
  const std::vector<std::string> properties = {
      "P=? [ F<=5 \"one\" ]", "P=? [ F \"one\" ]", "R=? [ I=10 ]",
      "R=? [ S ]",            "P=? [ G<=8 !\"one\" ]",
  };

  const auto runAll = [&] {
    test::MatrixModel model = test::twoStateChain(0.3, 0.4);
    model.withLabel("one", {0, 1}).withRewards({0.0, 1.0});
    const dtmc::BuildResult build = dtmc::buildExplicit(model);
    mc::Checker checker(build.dtmc, model);
    std::vector<double> values;
    values.reserve(properties.size());
    for (const auto& property : properties) {
      values.push_back(checker.check(property).value);
    }
    return values;
  };

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.setEnabled(false);
  const std::vector<double> off = runAll();

  tracer.setEnabled(true);
  tracer.setDetailEnabled(true);  // per-step spans on the traversal path too
  const std::vector<double> on = runAll();
  tracer.setDetailEnabled(false);
  tracer.setEnabled(false);
  tracer.clear();

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    // Byte-identical, not just approximately equal: tracing must never
    // perturb the numeric path.
    EXPECT_EQ(std::memcmp(&off[i], &on[i], sizeof(double)), 0)
        << "property " << properties[i] << ": " << off[i] << " vs " << on[i];
  }
}

TEST(ObsDeterminism, SweepCsvByteIdenticalTracingOnVsOff) {
  // Acceptance criterion: the exported sweep artifacts (the paper tables)
  // are byte-for-byte identical with observability on vs off. Default
  // export only — the opt-in diagnostic columns carry wall-clock by design.
  const auto runSweep = [] {
    sweep::SweepSpec spec("obs_onoff");
    spec.space.cross(sweep::Axis::doubles("a", {0.25, 0.3}))
        .cross(sweep::Axis::ints("T", 3, 23, 10));
    spec.factory = [](const sweep::Params& p) {
      auto model = std::make_shared<test::MatrixModel>(
          test::twoStateChain(p.getDouble("a"), 0.4));
      model->withLabel("one", {1}).withRewards({0.0, 1.0});
      return model;
    };
    spec.properties = [](const sweep::Params& p) {
      const std::string t = std::to_string(p.getInt("T"));
      return std::vector<std::string>{"R=? [ I=" + t + " ]",
                                      "P=? [ F<=" + t + " \"one\" ]"};
    };
    obs::MetricsRegistry registry;  // keep the global registry untouched
    engine::EngineOptions options;
    options.metrics = &registry;
    engine::AnalysisEngine eng(options);
    const sweep::ResultTable table = sweep::Runner(eng).run(spec);
    return std::make_pair(table.toCsv(), table.toJson());
  };

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.setEnabled(false);
  const auto off = runSweep();

  tracer.setEnabled(true);
  tracer.setDetailEnabled(true);
  const auto on = runSweep();
  tracer.setDetailEnabled(false);
  tracer.setEnabled(false);
  tracer.clear();

  EXPECT_EQ(off.first, on.first);    // CSV, every byte
  EXPECT_EQ(off.second, on.second);  // JSON, every byte
}

// --------------------------------------------- engine latency percentiles

TEST(ObsEngineStats, ReportsRequestLatencyPercentiles) {
  obs::MetricsRegistry registry;
  engine::EngineOptions options;
  options.metrics = &registry;
  options.threads = 2;
  engine::AnalysisEngine eng(options);

  const auto model = test::twoStateChain(0.3, 0.4);
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F<=5 s=1 ]"};
  constexpr std::uint64_t kRequests = 8;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const auto response = eng.analyze(request);
    ASSERT_TRUE(response.error.empty());
    EXPECT_GT(response.totalSeconds, 0.0);
    EXPECT_EQ(response.timing.totalSeconds, response.totalSeconds);
    EXPECT_GE(response.timing.buildSeconds, 0.0);
    EXPECT_GE(response.timing.checkSeconds, 0.0);
    EXPECT_EQ(response.timing.queueSeconds, 0.0);  // synchronous analyze()
  }

  const engine::EngineStats stats = eng.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_GT(stats.p50RequestSeconds, 0.0);
  // Quantiles are monotone in q by construction.
  EXPECT_LE(stats.p50RequestSeconds, stats.p90RequestSeconds);
  EXPECT_LE(stats.p90RequestSeconds, stats.p99RequestSeconds);
  // The percentile estimate never exceeds the bucket above the observed
  // max; every request latency also landed in the request histogram.
  const obs::HistogramSnapshot latency =
      registry.histogramSnapshot("engine.request_ns");
  EXPECT_EQ(latency.count, kRequests);
  EXPECT_GT(latency.max, 0u);
}

}  // namespace
}  // namespace mimostat
