#include <gtest/gtest.h>

#include "dtmc/builder.hpp"
#include "lump/symmetry.hpp"
#include "mc/checker.hpp"
#include "mimo/model.hpp"
#include "mimo/sim.hpp"

namespace mimostat {
namespace {

/// A small configuration so the full (unreduced) model stays test-sized.
mimo::MimoParams tinyParams() {
  mimo::MimoParams p;
  p.nr = 2;
  p.snrDb = 6.0;
  p.hLevels = 2;
  p.hRange = 1.2;
  p.yLevels = 3;
  p.yRange = 1.8;
  return p;
}

TEST(MimoModel, RowsAreStochastic) {
  const mimo::MimoDetectorModel model(tinyParams());
  const auto result = dtmc::buildExplicit(model);
  EXPECT_LT(result.dtmc.maxRowDeviation(), 1e-12);
}

TEST(MimoModel, ReachabilityFixpointIsFast) {
  // The 3-phase pipeline mixes almost immediately — the structural reason
  // for the paper's RI=3.
  const mimo::MimoDetectorModel model(tinyParams());
  const auto result = dtmc::buildExplicit(model);
  EXPECT_LE(result.reachabilityIterations, 5u);
}

TEST(MimoModel, PhaseStructure) {
  const mimo::MimoDetectorModel model(tinyParams());
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto phaseIdx = d.varLayout().indexOf("phase");
  // Every transition advances the phase cyclically.
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    const auto phase = d.varValue(s, phaseIdx);
    for (std::uint64_t k = d.rowPtr()[s]; k < d.rowPtr()[s + 1]; ++k) {
      EXPECT_EQ(d.varValue(d.col()[k], phaseIdx), (phase + 1) % 3);
    }
  }
}

TEST(MimoModel, InstantaneousRewardIsBerForAnyLateT) {
  // flag is sticky, so R=?[I=T] is T-independent once the pipeline has
  // completed a cycle (Table V's near-constant rows).
  const mimo::MimoDetectorModel model(tinyParams());
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double t5 = checker.check("R=? [ I=5 ]").value;
  const double t10 = checker.check("R=? [ I=10 ]").value;
  const double t20 = checker.check("R=? [ I=20 ]").value;
  EXPECT_NEAR(t5, t10, 1e-12);
  EXPECT_NEAR(t10, t20, 1e-12);
  EXPECT_GT(t5, 0.0);
  EXPECT_LT(t5, 0.5);
}

TEST(MimoModel, SymmetryReductionPreservesBer) {
  const mimo::MimoDetectorModel model(tinyParams());
  const lump::SymmetryReducedModel reduced(model, model.symmetryBlocks());
  const auto full = dtmc::buildExplicit(model);
  const auto quotient = dtmc::buildExplicit(reduced);

  EXPECT_LT(quotient.dtmc.numStates(), full.dtmc.numStates());

  const mc::Checker fullChecker(full.dtmc, model);
  const mc::Checker quotientChecker(quotient.dtmc, reduced);
  for (const auto* prop : {"R=? [ I=5 ]", "R=? [ I=11 ]",
                           "P=? [ F<=9 flag ]", "P=? [ G<=9 !flag ]"}) {
    EXPECT_NEAR(fullChecker.check(prop).value,
                quotientChecker.check(prop).value, 1e-11)
        << prop;
  }
}

TEST(MimoModel, SymmetryVerifierAcceptsDetector) {
  const mimo::MimoDetectorModel model(tinyParams());
  const lump::SymmetryReducedModel reduced(model, model.symmetryBlocks());
  EXPECT_TRUE(reduced.verifySymmetry({"error"}, 100, 3));
}

TEST(MimoModel, ReductionFactorGrowsWithAntennas) {
  // Table II's trend: the 2*Nr-block symmetry saves more for more antennas.
  auto small = tinyParams();
  small.nr = 1;
  auto large = tinyParams();
  large.nr = 3;
  large.yLevels = 2;  // keep the full model buildable

  const mimo::MimoDetectorModel smallModel(small);
  const mimo::MimoDetectorModel largeModel(large);
  const lump::SymmetryReducedModel smallReduced(smallModel,
                                                smallModel.symmetryBlocks());
  const lump::SymmetryReducedModel largeReduced(largeModel,
                                                largeModel.symmetryBlocks());

  const double factorSmall =
      static_cast<double>(dtmc::buildExplicit(smallModel).dtmc.numStates()) /
      dtmc::buildExplicit(smallReduced).dtmc.numStates();
  const double factorLarge =
      static_cast<double>(dtmc::buildExplicit(largeModel).dtmc.numStates()) /
      dtmc::buildExplicit(largeReduced).dtmc.numStates();
  EXPECT_GT(factorLarge, factorSmall);
}

TEST(MimoModel, BerMatchesQuantizedSimulation) {
  const auto params = tinyParams();
  const mimo::MimoDetectorModel model(params);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double modelBer = checker.check("R=? [ I=8 ]").value;
  const auto sim = mimo::simulateQuantized(params, 400000, 77);
  const auto interval = sim.bitErrors.wilson(0.99);
  EXPECT_TRUE(interval.contains(modelBer))
      << "model " << modelBer << " sim [" << interval.low << ", "
      << interval.high << "]";
}

TEST(MimoModel, HigherSnrLowersBer) {
  // Note: with very coarse quantizers BER is not globally monotone in SNR
  // (the noise can push samples into informative cells — a real fixed-point
  // artifact this methodology exists to expose). Compare well-separated
  // SNRs in the noise-dominated regime where monotonicity does hold.
  auto low = tinyParams();
  low.snrDb = 0.0;
  auto high = tinyParams();
  high.snrDb = 10.0;
  const mimo::MimoDetectorModel lowModel(low);
  const mimo::MimoDetectorModel highModel(high);
  const auto lowD = dtmc::buildExplicit(lowModel).dtmc;
  const auto highD = dtmc::buildExplicit(highModel).dtmc;
  const double lowBer = mc::Checker(lowD, lowModel).check("R=? [ I=6 ]").value;
  const double highBer =
      mc::Checker(highD, highModel).check("R=? [ I=6 ]").value;
  EXPECT_LT(highBer, lowBer);
}

TEST(MimoModel, ErrorAtomMatchesFlagVariable) {
  const mimo::MimoDetectorModel model(tinyParams());
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto truth = d.evalAtom(model, "error");
  const auto flagIdx = d.varLayout().indexOf("flag");
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    EXPECT_EQ(truth.get(s), d.varValue(s, flagIdx) == 1);
  }
}

}  // namespace
}  // namespace mimostat
