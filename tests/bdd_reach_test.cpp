#include <gtest/gtest.h>

#include "bdd/reachability.hpp"
#include "bdd/stateset.hpp"
#include "dtmc/builder.hpp"
#include "test_models.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

TEST(SymbolicReach, LineModelMatchesExplicit) {
  const auto model = test::lineModel(12);
  bdd::SymbolicSpace space(model.layout().totalBits());
  const auto symbolic = bdd::buildSymbolic(model, space, 1 << 16);
  const auto explicitResult = dtmc::buildExplicit(model);
  EXPECT_EQ(symbolic.stateCount,
            static_cast<double>(explicitResult.dtmc.numStates()));
  EXPECT_EQ(symbolic.iterations, explicitResult.reachabilityIterations);
}

TEST(SymbolicReach, RandomModelsMatchExplicit) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    const auto model = test::randomModel(40, 3, seed);
    bdd::SymbolicSpace space(model.layout().totalBits());
    const auto symbolic = bdd::buildSymbolic(model, space, 1 << 16);
    const auto explicitResult = dtmc::buildExplicit(model);
    EXPECT_EQ(symbolic.stateCount,
              static_cast<double>(explicitResult.dtmc.numStates()))
        << "seed " << seed;
  }
}

TEST(SymbolicReach, ImageOfSingleState) {
  // 0 -> {1, 2}: the image of {0} must be exactly {1, 2}.
  test::MatrixModel model({{0, 0.5, 0.5}, {0, 1, 0}, {0, 0, 1}});
  bdd::SymbolicSpace space(model.layout().totalBits());
  const auto symbolic = bdd::buildSymbolic(model, space, 1 << 10);
  const auto init = space.rowMinterm(0);
  const auto image = space.image(init, symbolic.relation);
  EXPECT_EQ(space.countStates(image), 2.0);
  const auto image2 = space.image(image, symbolic.relation);
  EXPECT_EQ(space.countStates(image2), 2.0);  // both absorbing
}

TEST(SymbolicReach, UnreachableStatesExcluded) {
  test::MatrixModel model({{1.0, 0, 0}, {0, 1.0, 0}, {0, 0, 1.0}});
  bdd::SymbolicSpace space(2);
  const auto symbolic = bdd::buildSymbolic(model, space, 100);
  EXPECT_EQ(symbolic.stateCount, 1.0);
}

TEST(BddStateSet, AgreesWithHashSet) {
  util::Xoshiro256 rng(12);
  bdd::BddStateSet bddSet(16);
  util::PackedStateSet hashSet;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.nextBounded(1 << 16);
    EXPECT_EQ(bddSet.insert(key), hashSet.insert(key)) << key;
  }
  EXPECT_EQ(bddSet.size(), static_cast<double>(hashSet.size()));
  for (std::uint64_t key = 0; key < (1 << 16); key += 97) {
    EXPECT_EQ(bddSet.contains(key), hashSet.contains(key));
  }
}

TEST(BddStateSet, DenseRangeCompressesWell) {
  // A full interval [0, 2^12) is one cube-like structure: node count must
  // be far below the state count — the symbolic advantage.
  bdd::BddStateSet set(12);
  for (std::uint64_t i = 0; i < (1 << 12); ++i) set.insert(i);
  EXPECT_EQ(set.size(), 4096.0);
  EXPECT_LT(set.nodeCount(), 64u);
}

}  // namespace
}  // namespace mimostat
