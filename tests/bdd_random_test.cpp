// Randomized property tests for the BDD package: random Boolean expression
// trees are evaluated both through the BDD manager and by direct truth-table
// enumeration; every operation must agree on every assignment.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "bdd/manager.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

using bdd::BddManager;
using bdd::NodeRef;

constexpr std::uint32_t kVars = 7;
constexpr std::uint64_t kAssignments = 1ULL << kVars;

/// A random function as both a BDD and a direct evaluator.
struct RandomFunction {
  NodeRef node;
  std::function<bool(std::uint64_t)> eval;
};

RandomFunction buildRandom(BddManager& mgr, util::Xoshiro256& rng, int depth) {
  if (depth == 0 || rng.nextBounded(4) == 0) {
    switch (rng.nextBounded(4)) {
      case 0:
        return {BddManager::kTrue, [](std::uint64_t) { return true; }};
      case 1:
        return {BddManager::kFalse, [](std::uint64_t) { return false; }};
      default: {
        const auto v = static_cast<std::uint32_t>(rng.nextBounded(kVars));
        return {mgr.var(v),
                [v](std::uint64_t a) { return ((a >> v) & 1) != 0; }};
      }
    }
  }
  const auto op = rng.nextBounded(4);
  auto lhs = buildRandom(mgr, rng, depth - 1);
  if (op == 0) {
    return {mgr.bddNot(lhs.node),
            [l = lhs.eval](std::uint64_t a) { return !l(a); }};
  }
  auto rhs = buildRandom(mgr, rng, depth - 1);
  switch (op) {
    case 1:
      return {mgr.bddAnd(lhs.node, rhs.node),
              [l = lhs.eval, r = rhs.eval](std::uint64_t a) {
                return l(a) && r(a);
              }};
    case 2:
      return {mgr.bddOr(lhs.node, rhs.node),
              [l = lhs.eval, r = rhs.eval](std::uint64_t a) {
                return l(a) || r(a);
              }};
    default:
      return {mgr.bddXor(lhs.node, rhs.node),
              [l = lhs.eval, r = rhs.eval](std::uint64_t a) {
                return l(a) != r(a);
              }};
  }
}

class BddRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddRandomTest, EvaluationMatchesExpressionTree) {
  BddManager mgr(kVars);
  util::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const auto f = buildRandom(mgr, rng, 5);
    for (std::uint64_t a = 0; a < kAssignments; ++a) {
      ASSERT_EQ(mgr.evaluate(f.node, a), f.eval(a)) << "assignment " << a;
    }
  }
}

TEST_P(BddRandomTest, SatCountMatchesEnumeration) {
  BddManager mgr(kVars);
  util::Xoshiro256 rng(GetParam() + 1000);
  const auto f = buildRandom(mgr, rng, 6);
  double count = 0;
  for (std::uint64_t a = 0; a < kAssignments; ++a) {
    if (f.eval(a)) count += 1.0;
  }
  EXPECT_EQ(mgr.satCount(f.node), count);
}

TEST_P(BddRandomTest, ExistsMatchesEnumeration) {
  BddManager mgr(kVars);
  util::Xoshiro256 rng(GetParam() + 2000);
  const auto f = buildRandom(mgr, rng, 5);
  const auto v = static_cast<std::uint32_t>(rng.nextBounded(kVars));
  const NodeRef quantified = mgr.exists(f.node, mgr.cube({v}));
  for (std::uint64_t a = 0; a < kAssignments; ++a) {
    const bool expected =
        f.eval(a & ~(1ULL << v)) || f.eval(a | (1ULL << v));
    ASSERT_EQ(mgr.evaluate(quantified, a), expected);
  }
}

TEST_P(BddRandomTest, ForallMatchesEnumeration) {
  BddManager mgr(kVars);
  util::Xoshiro256 rng(GetParam() + 3000);
  const auto f = buildRandom(mgr, rng, 5);
  const auto v = static_cast<std::uint32_t>(rng.nextBounded(kVars));
  const NodeRef quantified = mgr.forall(f.node, mgr.cube({v}));
  for (std::uint64_t a = 0; a < kAssignments; ++a) {
    const bool expected =
        f.eval(a & ~(1ULL << v)) && f.eval(a | (1ULL << v));
    ASSERT_EQ(mgr.evaluate(quantified, a), expected);
  }
}

TEST_P(BddRandomTest, RestrictMatchesEnumeration) {
  BddManager mgr(kVars);
  util::Xoshiro256 rng(GetParam() + 4000);
  const auto f = buildRandom(mgr, rng, 5);
  const auto v = static_cast<std::uint32_t>(rng.nextBounded(kVars));
  for (const bool value : {false, true}) {
    const NodeRef restricted = mgr.restrict(f.node, v, value);
    for (std::uint64_t a = 0; a < kAssignments; ++a) {
      const std::uint64_t forced =
          value ? (a | (1ULL << v)) : (a & ~(1ULL << v));
      ASSERT_EQ(mgr.evaluate(restricted, a), f.eval(forced));
    }
  }
}

TEST_P(BddRandomTest, AndExistsEqualsComposition) {
  BddManager mgr(kVars);
  util::Xoshiro256 rng(GetParam() + 5000);
  const auto f = buildRandom(mgr, rng, 4);
  const auto g = buildRandom(mgr, rng, 4);
  const NodeRef cube = mgr.cube({1, 4});
  EXPECT_EQ(mgr.andExists(f.node, g.node, cube),
            mgr.exists(mgr.bddAnd(f.node, g.node), cube));
}

TEST_P(BddRandomTest, CanonicityAcrossConstructionOrders) {
  // f & (g | h) built two different ways must be the identical node.
  BddManager mgr(kVars);
  util::Xoshiro256 rng(GetParam() + 6000);
  const auto f = buildRandom(mgr, rng, 4);
  const auto g = buildRandom(mgr, rng, 4);
  const auto h = buildRandom(mgr, rng, 4);
  const NodeRef direct = mgr.bddAnd(f.node, mgr.bddOr(g.node, h.node));
  const NodeRef distributed = mgr.bddOr(mgr.bddAnd(f.node, g.node),
                                        mgr.bddAnd(f.node, h.node));
  EXPECT_EQ(direct, distributed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mimostat
