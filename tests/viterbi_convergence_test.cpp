#include <gtest/gtest.h>

#include "dtmc/builder.hpp"
#include "dtmc/graph.hpp"
#include "mc/checker.hpp"
#include "mc/transient.hpp"
#include "viterbi/model_convergence.hpp"
#include "viterbi/sim.hpp"

namespace mimostat {
namespace {

viterbi::ViterbiParams convParams(int traceLength) {
  viterbi::ViterbiParams p;
  p.tracebackLength = traceLength;
  p.snrDb = 8.0;  // the paper's convergence experiment SNR
  return p;
}

TEST(Convergence, ModelIsSmall) {
  // The reduction to (pm0, pm1, x0, count) keeps the model tiny — the
  // paper reports ~61k states vs hundreds of millions for the full model.
  const viterbi::ConvergenceViterbiModel model(convParams(8), 12);
  const auto result = dtmc::buildExplicit(model);
  EXPECT_LT(result.dtmc.numStates(), 5000u);
  EXPECT_LT(result.dtmc.maxRowDeviation(), 1e-12);
}

TEST(Convergence, CountResetsOnConvergentStage) {
  const viterbi::ConvergenceViterbiModel model(convParams(4), 8);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto countIdx = d.varLayout().indexOf("count");
  // Every transition either resets count to 0 or increments (with cap).
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    const auto count = d.varValue(s, countIdx);
    for (std::uint64_t k = d.rowPtr()[s]; k < d.rowPtr()[s + 1]; ++k) {
      const auto next = d.varValue(d.col()[k], countIdx);
      EXPECT_TRUE(next == 0 || next == std::min(count + 1, 8)) << count;
    }
  }
}

TEST(Convergence, NonConvergenceDecreasesWithL) {
  // Figure 2: C1 decreases with the traceback length. One model with a
  // large counter answers every L via the nc<k> reward structures.
  const viterbi::ConvergenceViterbiModel model(convParams(5), 12);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  double previous = 1.0;
  for (const int L : {2, 3, 4, 5, 6, 8, 10}) {
    const std::string prop =
        "R{\"nc" + std::to_string(L) + "\"}=? [ I=400 ]";
    const double c1 = checker.check(prop).value;
    EXPECT_LE(c1, previous + 1e-12) << "L=" << L;
    EXPECT_GE(c1, 0.0);
    previous = c1;
  }
}

TEST(Convergence, DefaultRewardMatchesNamedReward) {
  const viterbi::ConvergenceViterbiModel model(convParams(6), 10);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  EXPECT_NEAR(checker.check("R=? [ I=200 ]").value,
              checker.check("R{\"nc6\"}=? [ I=200 ]").value, 1e-15);
}

TEST(Convergence, SteadyStateReached) {
  const viterbi::ConvergenceViterbiModel model(convParams(8), 12);
  const auto build = dtmc::buildExplicit(model);
  const auto reward = build.dtmc.evalReward(model, "");
  const auto detection =
      mc::detectRewardSteadyState(build.dtmc, reward, 1e-12, 16, 5000);
  EXPECT_TRUE(detection.converged);
  // Table IV: values at T=100/400/1000 differ only marginally.
  const double t100 = mc::instantaneousReward(build.dtmc, reward, 100);
  const double t1000 = mc::instantaneousReward(build.dtmc, reward, 1000);
  EXPECT_NEAR(t100, t1000, 1e-4 + 0.05 * t1000);
}

TEST(Convergence, ChainHasUniqueRecurrentClass) {
  // §III's precondition for steady state, checked structurally. The
  // biased initial path metric (pm1 = pmCap) is transient — the decoder
  // never returns to its reset state — so the chain is not irreducible as
  // a whole; what steady state needs is a unique (aperiodic) recurrent
  // class reached from the initial state.
  const viterbi::ConvergenceViterbiModel model(convParams(4), 8);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto scc = dtmc::computeSccs(d);
  EXPECT_EQ(scc.bottomComponents.size(), 1u);
  // Aperiodicity within the recurrent class: the reward transient settles
  // to a constant (it would oscillate forever on a periodic class).
  const auto reward = d.evalReward(model, "");
  const auto detection =
      mc::detectRewardSteadyState(d, reward, 1e-12, 16, 5000);
  EXPECT_TRUE(detection.converged);
}

TEST(Convergence, ModelMatchesSimulation) {
  // Cross-validate C1 against the bit-accurate decoder simulation.
  const int L = 4;
  const viterbi::ConvergenceViterbiModel model(convParams(L), 8);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double modelC1 = checker.check("R=? [ I=2000 ]").value;
  const auto sim = viterbi::simulate(convParams(L), 400000, 2024);
  const auto interval = sim.nonConvergent.wilson(0.99);
  EXPECT_TRUE(interval.contains(modelC1))
      << "model " << modelC1 << " sim [" << interval.low << ", "
      << interval.high << "]";
}

TEST(Convergence, AtomNonconvMatchesReward) {
  const viterbi::ConvergenceViterbiModel model(convParams(4), 8);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto truth = d.evalAtom(model, "nonconv");
  const auto reward = d.evalReward(model, "");
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    EXPECT_EQ(truth.get(s), reward[s] == 1.0);
  }
}

}  // namespace
}  // namespace mimostat
