#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "dtmc/builder.hpp"
#include "engine/engine.hpp"
#include "mc/checker.hpp"
#include "sweep/param_space.hpp"
#include "sweep/result_table.hpp"
#include "sweep/runner.hpp"
#include "sweep/spec.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

using sweep::Axis;
using sweep::ParamSpace;
using sweep::Params;

std::int64_t asInt(const sweep::ParamValue& v) {
  return std::get<std::int64_t>(v);
}

// ------------------------------------------------------------- ParamSpace

TEST(ParamSpace, CartesianEnumeratesInNestedLoopOrder) {
  ParamSpace space;
  space.cross(Axis::ints("a", 0, 1)).cross(Axis::ints("b", 10, 30, 10));
  const auto points = space.points();
  ASSERT_EQ(points.size(), 6u);
  EXPECT_EQ(space.gridSize(), 6u);
  // Last-declared axis varies fastest.
  const std::vector<std::pair<std::int64_t, std::int64_t>> expected{
      {0, 10}, {0, 20}, {0, 30}, {1, 10}, {1, 20}, {1, 30}};
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].getInt("a"), expected[i].first) << i;
    EXPECT_EQ(points[i].getInt("b"), expected[i].second) << i;
  }
  EXPECT_EQ(space.axisNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(ParamSpace, ZipAdvancesAxesTogether) {
  ParamSpace space;
  space.cross(Axis::ints("run", 1, 2));
  space.zip({Axis::ints("L", 2, 4), Axis::doubles("snr", {1.0, 2.0, 3.0})});
  const auto points = space.points();
  ASSERT_EQ(points.size(), 6u);  // 2 runs x 3 zipped pairs, not 2 x 3 x 3
  EXPECT_EQ(points[0].getInt("L"), 2);
  EXPECT_EQ(points[0].getDouble("snr"), 1.0);
  EXPECT_EQ(points[2].getInt("L"), 4);
  EXPECT_EQ(points[2].getDouble("snr"), 3.0);
  EXPECT_EQ(points[3].getInt("run"), 2);
  EXPECT_EQ(points[3].getInt("L"), 2);
}

TEST(ParamSpace, ZipRejectsLengthMismatchAndDuplicates) {
  ParamSpace space;
  EXPECT_THROW(
      space.zip({Axis::ints("x", 0, 1), Axis::ints("y", 0, 2)}),
      std::invalid_argument);
  space.cross(Axis::ints("x", 0, 1));
  EXPECT_THROW(space.cross(Axis::ints("x", 5, 6)), std::invalid_argument);
}

TEST(ParamSpace, FilterDropsPoints) {
  ParamSpace space;
  space.cross(Axis::ints("a", 0, 3))
      .filter([](const Params& p) { return p.getInt("a") % 2 == 0; });
  const auto points = space.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].getInt("a"), 0);
  EXPECT_EQ(points[1].getInt("a"), 2);
  EXPECT_EQ(space.gridSize(), 4u);  // pre-filter grid
}

TEST(ParamSpace, LogspaceHitsEndpoints) {
  const Axis axis = Axis::logspace("snr", 1.0, 100.0, 5);
  ASSERT_EQ(axis.size(), 5u);
  EXPECT_DOUBLE_EQ(std::get<double>(axis.value(0)), 1.0);
  EXPECT_NEAR(std::get<double>(axis.value(2)), 10.0, 1e-12);
  EXPECT_NEAR(std::get<double>(axis.value(4)), 100.0, 1e-12);
  EXPECT_THROW(Axis::logspace("bad", 0.0, 10.0, 3), std::invalid_argument);
}

TEST(ParamSpace, ParamsTypedAccessors) {
  ParamSpace space;
  space.cross(Axis::ints("n", 5, 5))
      .cross(Axis::strings("design", {"viterbi"}));
  const auto points = space.points();
  ASSERT_EQ(points.size(), 1u);
  const Params& p = points[0];
  EXPECT_TRUE(p.has("n"));
  EXPECT_FALSE(p.has("missing"));
  EXPECT_EQ(p.getInt("n"), 5);
  EXPECT_EQ(p.getDouble("n"), 5.0);  // int widens
  EXPECT_EQ(p.getString("design"), "viterbi");
  EXPECT_THROW((void)p.getInt("missing"), std::out_of_range);
  EXPECT_EQ(p.format(), "n=5, design=viterbi");
}

// ----------------------------------------------------------------- Runner

/// A sweep over chain parameter `a` and horizon `T`, fresh model per point.
sweep::SweepSpec crossChainSpec() {
  sweep::SweepSpec spec("cross_chain");
  spec.space.cross(Axis::doubles("a", {0.25, 0.3}))
      .cross(Axis::ints("T", 3, 23, 10));
  spec.factory = [](const Params& p) {
    auto model = std::make_shared<test::MatrixModel>(
        test::twoStateChain(p.getDouble("a"), 0.4));
    model->withRewards({0.0, 1.0});
    return model;
  };
  spec.properties = [](const Params& p) {
    const std::string t = std::to_string(p.getInt("T"));
    return std::vector<std::string>{"R=? [ I=" + t + " ]",
                                    "R=? [ C<=" + t + " ]"};
  };
  return spec;
}

TEST(SweepRunner, MatchesPerCallEngineRequestsBitForBit) {
  // Acceptance criterion: a sweep over a small grid is byte-identical to
  // issuing one engine request per (point, property) by hand.
  const auto spec = crossChainSpec();
  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.size(), 2u * 3u * 2u);

  engine::AnalysisEngine reference;
  const auto points = spec.space.points();
  std::size_t rowIdx = 0;
  for (const auto& point : points) {
    const auto model = spec.factory(point);
    for (const auto& property : spec.properties(point)) {
      engine::AnalysisRequest request;
      request.model = model.get();
      request.properties = {property};
      request.options = spec.options;
      const auto response = reference.analyze(request);
      ASSERT_TRUE(response.ok());
      const auto& row = table.rows()[rowIdx++];
      EXPECT_EQ(row.property, property);
      EXPECT_EQ(row.value, response.results[0].value) << property;
      EXPECT_EQ(row.satisfied, response.results[0].satisfied);
      EXPECT_EQ(row.states, response.states);
    }
  }

  // ... and to the fully hand-rolled checker loop.
  rowIdx = 0;
  for (const auto& point : points) {
    const auto model = spec.factory(point);
    const auto build = dtmc::buildExplicit(*model);
    const mc::Checker checker(build.dtmc, *model);
    for (const auto& property : spec.properties(point)) {
      EXPECT_EQ(table.rows()[rowIdx++].value, checker.check(property).value)
          << property;
    }
  }
}

TEST(SweepRunner, DeterministicBytesAcrossThreadCounts) {
  // Acceptance criterion: same bytes at 1, 2 and 8 runner threads.
  std::vector<std::string> csv;
  std::vector<std::string> json;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::AnalysisEngine eng(engine::EngineOptions{threads, 8});
    const sweep::Runner runner(eng);
    const auto table = runner.run(crossChainSpec());
    ASSERT_TRUE(table.ok());
    csv.push_back(table.toCsv());
    json.push_back(table.toJson());
  }
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_EQ(csv[0], csv[2]);
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(json[0], json[2]);
}

TEST(SweepRunner, SamplingSweepDeterministicAcrossThreadCounts) {
  sweep::SweepSpec spec("sampled");
  spec.space.cross(Axis::ints("T", 4, 8, 2));
  spec.factory = [](const Params&) {
    auto model = std::make_shared<test::MatrixModel>(
        test::twoStateChain(0.3, 0.4));
    model->withLabel("one", {0, 1}).withRewards({0.0, 1.0});
    return model;
  };
  spec.properties = [](const Params& p) {
    const std::string t = std::to_string(p.getInt("T"));
    return std::vector<std::string>{"P=? [ F<=" + t + " \"one\" ]",
                                    "R=? [ C<=" + t + " ]"};
  };
  spec.options.backend = engine::Backend::kSampling;
  spec.options.smc.paths = 3000;
  spec.options.smc.seed = 41;
  spec.options.smc.chunkPaths = 256;

  std::vector<std::string> csv;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::AnalysisEngine eng(engine::EngineOptions{threads, 8});
    const sweep::Runner runner(eng);
    const auto table = runner.run(spec);
    ASSERT_TRUE(table.ok());
    EXPECT_GT(table.rows()[0].samples, 0u);
    EXPECT_TRUE(table.rows()[0].interval95.has_value());
    csv.push_back(table.toCsv());
  }
  EXPECT_EQ(csv[0], csv[1]);
  EXPECT_EQ(csv[0], csv[2]);
}

TEST(SweepRunner, SharedModelCoalescesIntoOneBatchedRequest) {
  const auto model = std::make_shared<test::MatrixModel>(
      test::twoStateChain(0.3, 0.4));
  model->withRewards({0.0, 1.0});

  sweep::SweepSpec spec("shared");
  spec.space.cross(Axis::ints("T", 5, 45, 10));
  spec.share(model);
  spec.properties = [](const Params& p) {
    return std::vector<std::string>{
        "R=? [ I=" + std::to_string(p.getInt("T")) + " ]"};
  };

  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.size(), 5u);
  EXPECT_EQ(eng.buildCount(), 1u);
  for (const auto& row : table.rows()) {
    EXPECT_TRUE(row.batched) << "horizons of a shared model share one sweep";
    // The serving request's plan counters ride into every row: horizons
    // 5..45 share one sweep of 45 steps (5+15+25+35 = 80 steps saved).
    EXPECT_EQ(row.plan.traversalsSaved, 80u);
    EXPECT_GT(row.plan.tasksPlanned, 0u);
  }

  // Turning coalescing off gives per-point requests with identical values
  // (still one build, through the model cache).
  engine::AnalysisEngine perPoint;
  const sweep::Runner uncoalesced(perPoint, sweep::RunOptions{false});
  const auto separate = uncoalesced.run(spec);
  ASSERT_TRUE(separate.ok());
  EXPECT_EQ(perPoint.buildCount(), 1u);
  for (std::size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.rows()[i].value, separate.rows()[i].value);
  }
}

TEST(SweepRunner, StructurallyEqualModelsShareOneBuild) {
  // Distinct model objects per point: no coalescing, but the engine's
  // signature-keyed cache still builds the DTMC once.
  auto spec = crossChainSpec();
  spec.space = ParamSpace();
  spec.space.cross(Axis::ints("T", 3, 43, 10));  // one `a`, five horizons
  spec.properties = [](const Params& p) {
    return std::vector<std::string>{
        "R=? [ I=" + std::to_string(p.getInt("T")) + " ]"};
  };
  spec.factory = [](const Params&) {
    auto model = std::make_shared<test::MatrixModel>(
        test::twoStateChain(0.25, 0.4));
    model->withRewards({0.0, 1.0});
    return model;
  };
  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(eng.buildCount(), 1u);
  EXPECT_EQ(eng.stats().cacheHits, 4u);
}

TEST(SweepRunner, FactoryFailureIsIsolatedPerPoint) {
  sweep::SweepSpec spec("faulty");
  spec.space.cross(Axis::ints("n", 1, 3));
  spec.factory = [](const Params& p) -> std::shared_ptr<const dtmc::Model> {
    if (p.getInt("n") == 2) throw std::runtime_error("factory boom");
    auto model = std::make_shared<test::MatrixModel>(
        test::twoStateChain(0.3, 0.4));
    model->withRewards({0.0, 1.0});
    return model;
  };
  spec.withProperties({"R=? [ I=5 ]"});

  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.errorCount(), 1u);
  EXPECT_TRUE(table.rows()[0].ok());
  EXPECT_EQ(table.rows()[1].error, "factory boom");
  // A failed row never exports as a passing zero.
  EXPECT_TRUE(std::isnan(table.rows()[1].value));
  EXPECT_FALSE(table.rows()[1].satisfied);
  EXPECT_TRUE(table.rows()[2].ok());
  EXPECT_EQ(table.rows()[0].value, table.rows()[2].value);
}

TEST(SweepRunner, EmptyPropertyListSkipsPointWithoutBuilding) {
  sweep::SweepSpec spec("skips");
  spec.space.cross(Axis::ints("n", 1, 3));
  spec.factory = [](const Params& p) -> std::shared_ptr<const dtmc::Model> {
    // The skipped point gets a structurally distinct model: if the runner
    // wrongly issued a request for it, buildCount would reach 2.
    if (p.getInt("n") == 2) {
      return std::make_shared<test::MatrixModel>(
          test::gamblersRuin(10, 0.5, 5));
    }
    auto model = std::make_shared<test::MatrixModel>(
        test::twoStateChain(0.3, 0.4));
    model->withRewards({0.0, 1.0});
    return model;
  };
  spec.properties = [](const Params& p) {
    if (p.getInt("n") == 2) return std::vector<std::string>{};
    return std::vector<std::string>{"R=? [ I=5 ]"};
  };

  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_EQ(table.size(), 2u);  // the empty point contributes no rows
  EXPECT_TRUE(table.ok());
  EXPECT_EQ(asInt(table.rows()[0].params[0]), 1);
  EXPECT_EQ(asInt(table.rows()[1].params[0]), 3);
  EXPECT_EQ(eng.buildCount(), 1u);  // the skipped point was never built

  // Every point skipped: no requests at all, an empty table (regression
  // test — this used to index an empty responses vector).
  spec.properties = [](const Params&) { return std::vector<std::string>{}; };
  const auto empty = runner.run(spec);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.ok());
}

TEST(SweepRunner, PropertyErrorIsIsolatedPerRow) {
  const auto model = std::make_shared<test::MatrixModel>(
      test::twoStateChain(0.3, 0.4));
  model->withRewards({0.0, 1.0});
  sweep::SweepSpec spec("parse_error");
  spec.space.cross(Axis::ints("n", 1, 2));
  spec.share(model);
  spec.properties = [](const Params& p) {
    if (p.getInt("n") == 1) {
      return std::vector<std::string>{"R=? [ I=5 ]", "not pctl"};
    }
    return std::vector<std::string>{"R=? [ I=5 ]"};
  };

  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_TRUE(table.rows()[0].ok());
  EXPECT_FALSE(table.rows()[1].ok());
  EXPECT_TRUE(table.rows()[2].ok());
  EXPECT_EQ(table.rows()[0].value, table.rows()[2].value);
}

TEST(SweepRunner, SpecWithoutFactoryThrows) {
  sweep::SweepSpec spec("incomplete");
  spec.space.cross(Axis::ints("n", 1, 2));
  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  EXPECT_THROW((void)runner.run(spec), std::invalid_argument);
  spec.factory = [](const Params&) {
    return std::make_shared<test::MatrixModel>(test::twoStateChain(0.3, 0.4));
  };
  EXPECT_THROW((void)runner.run(spec), std::invalid_argument);
}

// ------------------------------------------------------------ ResultTable

sweep::ResultTable gridTable() {
  std::vector<sweep::ResultRow> rows;
  for (std::int64_t a = 0; a < 2; ++a) {
    for (std::int64_t b = 0; b < 3; ++b) {
      sweep::ResultRow row;
      row.point = rows.size();
      row.params = {sweep::ParamValue{a}, sweep::ParamValue{b}};
      row.property = "R=? [ I=5 ]";
      row.value = static_cast<double>(10 * a + b);
      rows.push_back(row);
    }
  }
  return sweep::ResultTable("grid", {"a", "b"}, std::move(rows));
}

TEST(ResultTable, PivotReshapesLongFormat) {
  const auto table = gridTable();
  const auto pivot = table.pivot("a", "b");
  ASSERT_EQ(pivot.rowKeys.size(), 2u);
  ASSERT_EQ(pivot.colKeys.size(), 3u);
  EXPECT_EQ(asInt(pivot.rowKeys[0]), 0);
  EXPECT_EQ(asInt(pivot.colKeys[2]), 2);
  EXPECT_EQ(pivot.values[0][0], 0.0);
  EXPECT_EQ(pivot.values[1][2], 12.0);
  const std::string formatted = pivot.format("grid");
  EXPECT_NE(formatted.find("a \\ b"), std::string::npos);
  EXPECT_NE(formatted.find("12.0"), std::string::npos);

  EXPECT_THROW((void)table.pivot("a", "nope"), std::invalid_argument);
  // Collapsing b onto itself maps several rows to one cell: ambiguous.
  EXPECT_THROW((void)table.pivot("b", "b"), std::invalid_argument);
}

TEST(ResultTable, CsvEscapesAndRoundTrips) {
  std::vector<sweep::ResultRow> rows(1);
  rows[0].params = {sweep::ParamValue{std::string("a,\"b\"")}};
  rows[0].property = "P=? [ F<=5 \"one\" ]";
  rows[0].value = 0.125;
  rows[0].error = "line1\nline2";
  const sweep::ResultTable table("esc", {"design"}, std::move(rows));
  const std::string csv = table.toCsv();
  EXPECT_NE(csv.find("\"a,\"\"b\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
  // Default export: no run-dependent diagnostic columns.
  EXPECT_EQ(csv.find("cache_hit"), std::string::npos);
  EXPECT_EQ(csv.find("check_seconds"), std::string::npos);
  sweep::ExportOptions diag;
  diag.diagnostics = true;
  EXPECT_NE(table.toCsv(diag).find("check_seconds"), std::string::npos);
}

TEST(ResultTable, JsonEscapesStrings) {
  std::vector<sweep::ResultRow> rows(1);
  rows[0].params = {sweep::ParamValue{std::int64_t{7}}};
  rows[0].property = "P=? [ F<=5 \"one\" ]";
  rows[0].value = 0.5;
  const sweep::ResultTable table("json", {"T"}, std::move(rows));
  const std::string json = table.toJson();
  EXPECT_NE(json.find("\"sweep\":\"json\""), std::string::npos);
  EXPECT_NE(json.find("P=? [ F<=5 \\\"one\\\" ]"), std::string::npos);
  EXPECT_NE(json.find("\"params\":{\"T\":7}"), std::string::npos);
  EXPECT_NE(json.find("\"interval95\":null"), std::string::npos);
}

TEST(ResultTable, GuaranteeReportsFeedCoreReport) {
  const auto table = gridTable();
  const auto reports = table.guaranteeReports();
  ASSERT_EQ(reports.size(), table.size());
  EXPECT_EQ(reports[4].property, "a=1 b=1 R=? [ I=5 ]");
  EXPECT_EQ(reports[4].value, 11.0);
  const std::string formatted =
      core::formatReportTable("Sweep results", reports);
  EXPECT_NE(formatted.find("a=1 b=1 R=? [ I=5 ]"), std::string::npos);
}

// ---------------------------------------------- per-point options hook

TEST(SweepRunner, OptionsHookScalesSamplingPerPoint) {
  // The ROADMAP follow-up scenario: scale smc.paths with the point. One
  // shared model would normally coalesce both points into a single request
  // (one shared RequestOptions); the hook forces per-point requests, so
  // each point's path budget sticks.
  const auto model = std::make_shared<test::MatrixModel>(
      test::twoStateChain(0.3, 0.4));
  model->withLabel("one", {0, 1});

  sweep::SweepSpec spec("hooked");
  spec.space.cross(Axis::ints("T", 4, 8, 4));
  spec.share(model);
  spec.properties = [](const Params& p) {
    return std::vector<std::string>{
        "P=? [ F<=" + std::to_string(p.getInt("T")) + " \"one\" ]"};
  };
  spec.options.backend = engine::Backend::kSampling;
  spec.options.smc.paths = 100;
  spec.options.smc.seed = 7;
  spec.withOptionsHook([](const Params& p, const engine::RequestOptions& base) {
    engine::RequestOptions options = base;
    options.smc.paths =
        base.smc.paths * static_cast<std::uint64_t>(p.getInt("T"));
    return options;
  });

  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.rows()[0].samples, 400u);  // T=4: base 100 x 4
  EXPECT_EQ(table.rows()[1].samples, 800u);  // T=8: base 100 x 8
}

TEST(SweepRunner, OptionsHookPicksSolverPerPoint) {
  const auto model = std::make_shared<test::MatrixModel>(
      test::gamblersRuin(20, 0.45, 10));

  sweep::SweepSpec spec("solver-choice");
  spec.space.cross(Axis::strings("solver", {"gauss-seidel", "jacobi"}));
  spec.share(model);
  spec.withProperties({"P=? [ F s=20 ]"});
  spec.withOptionsHook([](const Params& p, const engine::RequestOptions& base) {
    engine::RequestOptions options = base;
    options.check.linearSolver = p.getString("solver") == "jacobi"
                                     ? la::SolverKind::kJacobi
                                     : la::SolverKind::kGaussSeidel;
    return options;
  });

  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table.size(), 2u);
  ASSERT_TRUE(table.rows()[0].solver.has_value());
  ASSERT_TRUE(table.rows()[1].solver.has_value());
  EXPECT_EQ(table.rows()[0].solver->solver, "gauss-seidel");
  EXPECT_EQ(table.rows()[1].solver->solver, "jacobi");
  EXPECT_TRUE(table.rows()[0].solver->converged);
  EXPECT_TRUE(table.rows()[1].solver->converged);
  EXPECT_NEAR(table.rows()[0].value, table.rows()[1].value, 1e-9);
  // Both points ran against one cached build despite separate requests.
  EXPECT_EQ(eng.buildCount(), 1u);
}

TEST(SweepRunner, OptionsHookFailureIsIsolatedPerPoint) {
  const auto model = std::make_shared<test::MatrixModel>(
      test::twoStateChain(0.3, 0.4));
  sweep::SweepSpec spec("hook-throws");
  spec.space.cross(Axis::ints("T", 1, 3));
  spec.factory = [&model](const Params& p)
      -> std::shared_ptr<const dtmc::Model> {
    // Point T=3 has no model: its row must report the factory failure, not
    // whatever the hook would have done.
    if (p.getInt("T") == 3) return nullptr;
    return model;
  };
  spec.withProperties({"P=? [ F \"one\" ]"});
  spec.withOptionsHook([](const Params& p, const engine::RequestOptions& base) {
    if (p.getInt("T") >= 2) throw std::runtime_error("bad point");
    return base;
  });
  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_EQ(table.size(), 3u);
  EXPECT_TRUE(table.rows()[0].ok());
  EXPECT_EQ(table.rows()[1].error, "bad point");
  EXPECT_EQ(table.rows()[2].error, "model factory returned null");
}

// ------------------------------------------- solver diagnostic columns

TEST(ResultTable, DiagnosticsIncludeSolverColumns) {
  const auto model = std::make_shared<test::MatrixModel>(
      test::gamblersRuin(10, 0.5, 4));
  sweep::SweepSpec spec("diag");
  spec.space.cross(Axis::ints("run", 1, 1));
  spec.share(model);
  spec.withProperties({"P=? [ F s=10 ]", "R=? [ I=3 ]"});

  engine::AnalysisEngine eng;
  const sweep::Runner runner(eng);
  const auto table = runner.run(spec);
  ASSERT_TRUE(table.ok());

  const std::string plain = table.toCsv();
  EXPECT_EQ(plain.find("solver_iterations"), std::string::npos);

  sweep::ExportOptions diagnostics;
  diagnostics.diagnostics = true;
  const std::string csv = table.toCsv(diagnostics);
  // Diagnostic columns are emitted sorted by name (stable header as
  // counters are added), so the solver group sits in alphabetical order.
  EXPECT_NE(csv.find(",simd,solver,solver_converged,solver_iterations,"
                     "solver_residual,spmm_panels,"),
            std::string::npos);
  EXPECT_NE(csv.find(",gauss-seidel,"), std::string::npos);

  const std::string json = table.toJson(diagnostics);
  EXPECT_NE(json.find("\"solver\":{\"name\":\"gauss-seidel\""),
            std::string::npos);
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
  // The transient row carries no solver report.
  EXPECT_NE(json.find("\"solver\":null"), std::string::npos);
  // SIMD/panel counters ride the same diagnostics opt-in.
  EXPECT_NE(json.find("\"simd\":\""), std::string::npos);
  EXPECT_NE(json.find("\"spmmPanels\":"), std::string::npos);
  EXPECT_EQ(plain.find("spmm_panels"), std::string::npos);
}

TEST(ResultTable, DiagnosticColumnsSortedByName) {
  std::vector<sweep::ResultRow> rows(1);
  rows[0].params = {sweep::ParamValue{std::int64_t{1}}};
  rows[0].property = "R=? [ I=3 ]";
  rows[0].value = 1.0;
  const sweep::ResultTable table("sorted", {"T"}, std::move(rows));
  sweep::ExportOptions diagnostics;
  diagnostics.diagnostics = true;
  const std::string csv = table.toCsv(diagnostics);
  const std::string header = csv.substr(0, csv.find('\n'));
  // Everything after the fixed "error" column is the diagnostic block.
  const std::size_t start = header.find(",error,");
  ASSERT_NE(start, std::string::npos);
  std::vector<std::string> columns;
  std::string rest = header.substr(start + 7);
  for (std::size_t pos = 0; pos != std::string::npos;) {
    const std::size_t comma = rest.find(',', pos);
    columns.push_back(rest.substr(pos, comma - pos));
    pos = comma == std::string::npos ? comma : comma + 1;
  }
  ASSERT_GE(columns.size(), 2u);
  EXPECT_TRUE(std::is_sorted(columns.begin(), columns.end()))
      << header;
  EXPECT_NE(std::find(columns.begin(), columns.end(), "simd"),
            columns.end());
  EXPECT_NE(std::find(columns.begin(), columns.end(), "spmm_panels"),
            columns.end());
}

}  // namespace
}  // namespace mimostat
