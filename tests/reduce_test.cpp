// reduce:: — plan-aware quotienting, state elimination and the engine's
// reduction stage. Asserts the tolerance contract from reduce/reduce.hpp:
// reduced answers agree with the unreduced reference within solver /
// rounding tolerance, and the engine's exports stay byte-identical across
// thread counts and tracing on/off.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "dtmc/signature.hpp"
#include "engine/engine.hpp"
#include "la/bit_vector.hpp"
#include "mc/checker.hpp"
#include "mc/unbounded.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reduce/eliminate.hpp"
#include "reduce/reduce.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

/// Reflecting birth-death chain with one absorbing "goal" end: every state
/// reaches goal with probability 1, so R=?[F goal] is finite everywhere.
test::MatrixModel birthDeathToGoal(std::uint32_t n, double up) {
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  matrix[0][1] = 1.0;
  for (std::uint32_t i = 1; i + 1 < n; ++i) {
    matrix[i][i + 1] = up;
    matrix[i][i - 1] = 1.0 - up;
  }
  matrix[n - 1][n - 1] = 1.0;
  std::vector<std::uint8_t> goal(n, 0);
  goal[n - 1] = 1;
  std::vector<double> rewards(n, 1.0);
  rewards[n - 1] = 0.0;
  test::MatrixModel model(std::move(matrix));
  model.withLabel("goal", std::move(goal)).withRewards(std::move(rewards));
  return model;
}

TEST(ReduceOptions, SelectionHeuristics) {
  reduce::Options options;  // kAuto / kAuto, threshold 100'000
  EXPECT_FALSE(reduce::quotientSelected(options, 99'999));
  EXPECT_TRUE(reduce::quotientSelected(options, 100'000));
  options.minQuotientStates = 10;
  EXPECT_TRUE(reduce::quotientSelected(options, 10));
  options.quotient = reduce::Toggle::kOn;
  EXPECT_TRUE(reduce::quotientSelected(options, 1));
  options.quotient = reduce::Toggle::kOff;
  EXPECT_FALSE(reduce::quotientSelected(options, 1'000'000));

  // The checker-level predicate honors only an explicit kOn.
  options.elimination = reduce::Toggle::kAuto;
  EXPECT_FALSE(reduce::eliminationOn(options));
  options.elimination = reduce::Toggle::kOn;
  EXPECT_TRUE(reduce::eliminationOn(options));
  options.elimination = reduce::Toggle::kOff;
  EXPECT_FALSE(reduce::eliminationOn(options));

  // Engine auto-resolution: quotient applied AND small enough, kAuto only.
  options.elimination = reduce::Toggle::kAuto;
  options.eliminationMaxStates = 100;
  EXPECT_TRUE(reduce::eliminationAutoFires(options, true, 100));
  EXPECT_FALSE(reduce::eliminationAutoFires(options, true, 101));
  EXPECT_FALSE(reduce::eliminationAutoFires(options, false, 10));
  options.elimination = reduce::Toggle::kOn;
  EXPECT_FALSE(reduce::eliminationAutoFires(options, true, 10));
}

TEST(ReduceQuotient, BuildQuotientLiftProject) {
  // 4 symmetric banks: 16 states collapse to the 5 count classes when the
  // partition is seeded by the count reward (the "any" mask refines
  // nothing the reward does not already split).
  const test::SymmetricBanksModel model(4, 0.3, 0.2);
  const auto build = dtmc::buildExplicit(model);
  const la::BitVector any = build.dtmc.evalAtom(model, "any");
  const std::vector<double> reward = build.dtmc.evalReward(model, "");

  const reduce::ReducedModel reduced =
      reduce::buildQuotient(build.dtmc, {&any}, {&reward});
  const reduce::ReductionInfo& info = reduced.info;
  EXPECT_EQ(info.statesBefore, 16u);
  EXPECT_EQ(info.statesAfter, 5u);
  ASSERT_EQ(info.blockOf.size(), 16u);
  ASSERT_EQ(info.representative.size(), 5u);
  EXPECT_EQ(reduced.quotient.numStates(), 5u);
  EXPECT_GT(info.transitionsBefore, info.transitionsAfter);

  // Keyed masks and rewards are block-constant: every state agrees with its
  // block representative, so projection is well-defined.
  const la::BitVector projectedAny = reduce::projectMask(info, any);
  const std::vector<double> projectedReward =
      reduce::projectVector(info, reward);
  for (std::uint32_t s = 0; s < 16; ++s) {
    const std::uint32_t b = info.blockOf[s];
    EXPECT_EQ(any.get(s), projectedAny.get(b)) << "state " << s;
    EXPECT_EQ(reward[s], projectedReward[b]) << "state " << s;
  }

  // Lift is the block-map indirection, exactly.
  const std::vector<double> blockValues{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> lifted =
      reduce::liftStateValues(info, blockValues);
  ASSERT_EQ(lifted.size(), 16u);
  for (std::uint32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(lifted[s], blockValues[info.blockOf[s]]);
  }

  // Quotient initial mass sums block members: banks start all-zero, so the
  // all-zero block carries the whole distribution.
  double initialMass = 0.0;
  for (const double w : reduced.quotient.initialDistribution()) {
    initialMass += w;
  }
  EXPECT_NEAR(initialMass, 1.0, 1e-12);
}

TEST(ReduceElimination, MatchesIterativeUntil) {
  const auto model = test::gamblersRuin(15, 0.45, 7);
  const auto build = dtmc::buildExplicit(model);
  const std::uint32_t n = build.dtmc.numStates();
  la::BitVector phi(n);
  for (std::uint32_t s = 0; s < n; ++s) phi.set(s);
  la::BitVector psi(n);
  // Ruin = counter variable "s" at 0; find that state in the table.
  for (std::uint32_t s = 0; s < n; ++s) {
    if (build.dtmc.varValue(s, 0) == 0) psi.set(s);
  }

  const mc::ReachResult iterative = mc::untilProb(build.dtmc, phi, psi);
  const mc::ReachResult exact =
      mc::untilProbByElimination(build.dtmc, phi, psi);
  ASSERT_EQ(exact.stateValues.size(), iterative.stateValues.size());
  for (std::uint32_t s = 0; s < n; ++s) {
    EXPECT_NEAR(exact.stateValues[s], iterative.stateValues[s], 1e-8)
        << "state " << s;
  }
  EXPECT_EQ(exact.solver, "elimination");
  EXPECT_TRUE(exact.converged);
  EXPECT_EQ(exact.residual, 0.0);
  EXPECT_GT(exact.iterations, 0u);  // = states eliminated
}

TEST(ReduceElimination, MatchesIterativeReward) {
  const auto model = birthDeathToGoal(14, 0.55);
  const auto build = dtmc::buildExplicit(model);
  const std::uint32_t n = build.dtmc.numStates();
  const la::BitVector psi = build.dtmc.evalAtom(model, "goal");
  const std::vector<double> reward = build.dtmc.evalReward(model, "");

  const mc::ReachResult iterative =
      mc::expectedReachReward(build.dtmc, reward, psi);
  const mc::ReachResult exact =
      mc::expectedReachRewardByElimination(build.dtmc, reward, psi);
  ASSERT_EQ(exact.stateValues.size(), iterative.stateValues.size());
  for (std::uint32_t s = 0; s < n; ++s) {
    const double scale = std::max(1.0, std::abs(iterative.stateValues[s]));
    EXPECT_NEAR(exact.stateValues[s], iterative.stateValues[s], 1e-7 * scale)
        << "state " << s;
  }
  EXPECT_EQ(exact.solver, "elimination");
}

TEST(ReduceElimination, InfiniteRewardStatesAgree) {
  // Gambler's ruin with reward 1 per step: interior states reach "win"
  // (s = n) with probability < 1, so their expected reward is +infinity on
  // both paths.
  auto model = test::gamblersRuin(10, 0.5, 5);
  model.withRewards(std::vector<double>(11, 1.0));
  const auto build = dtmc::buildExplicit(model);
  const std::uint32_t n = build.dtmc.numStates();
  la::BitVector psi(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (build.dtmc.varValue(s, 0) == 10) psi.set(s);
  }

  const mc::ReachResult iterative =
      mc::expectedReachReward(build.dtmc, build.dtmc.evalReward(model, ""), psi);
  const mc::ReachResult exact = mc::expectedReachRewardByElimination(
      build.dtmc, build.dtmc.evalReward(model, ""), psi);
  const double inf = std::numeric_limits<double>::infinity();
  bool sawInfinite = false;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (std::isinf(iterative.stateValues[s])) {
      EXPECT_EQ(exact.stateValues[s], inf) << "state " << s;
      sawInfinite = true;
    } else {
      EXPECT_NEAR(exact.stateValues[s], iterative.stateValues[s], 1e-8);
    }
  }
  EXPECT_TRUE(sawInfinite);
}

TEST(ReduceElimination, AllStatesClassifiedRunsNoElimination) {
  // psi covers every state: Prob1 classifies everything and elimination has
  // nothing to do — same empty-solver convention as the iterative path.
  const auto model = test::twoStateChain(0.3, 0.4);
  const auto build = dtmc::buildExplicit(model);
  la::BitVector psi(build.dtmc.numStates());
  psi.set(0);
  psi.set(1);
  const mc::ReachResult r = mc::reachProbByElimination(build.dtmc, psi);
  EXPECT_TRUE(r.solver.empty());
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_EQ(r.stateValues[0], 1.0);
  EXPECT_EQ(r.stateValues[1], 1.0);
}

TEST(ReduceElimination, CheckerSelectsEliminationViaOptions) {
  // One property per model so the undetermined-state set is non-empty and
  // a solver actually runs: ruin probability (interior states strictly
  // between 0 and 1) and a finite expected reward.
  auto ruinModel = test::gamblersRuin(12, 0.45, 6);
  std::vector<std::uint8_t> ruin(13, 0);
  ruin[0] = 1;
  ruinModel.withLabel("ruin", std::move(ruin));
  const auto rewardModel = birthDeathToGoal(12, 0.5);

  const auto checkBoth = [](const dtmc::Model& model,
                            const std::string& property) {
    const auto build = dtmc::buildExplicit(model);
    const mc::Checker iterative(build.dtmc, model);
    mc::CheckOptions options;
    options.reduction.elimination = reduce::Toggle::kOn;
    const mc::Checker eliminating(build.dtmc, model, options);

    const mc::CheckResult ref = iterative.check(property);
    const mc::CheckResult elim = eliminating.check(property);
    ASSERT_TRUE(elim.solver.has_value()) << property;
    EXPECT_EQ(elim.solver->solver, "elimination") << property;
    const double scale = std::max(1.0, std::abs(ref.value));
    EXPECT_NEAR(elim.value, ref.value, 1e-7 * scale) << property;
    // A standalone checker treats kAuto as off: the reference ran the
    // iterative solver, never elimination.
    ASSERT_TRUE(ref.solver.has_value()) << property;
    EXPECT_NE(ref.solver->solver, "elimination") << property;
  };
  checkBoth(ruinModel, "P=? [ F ruin ]");
  checkBoth(rewardModel, "R=? [ F goal ]");
}

// --- engine reduction stage ---

const std::vector<std::string> kBanksProperties{
    "P=? [ F<=10 any ]",
    "R=? [ I=20 ]",
    "R=? [ C<=30 ]",
    "P=? [ G<=15 !any ]",
    "P=? [ F any ]",
};

std::vector<double> engineValues(const engine::AnalysisResponse& response) {
  std::vector<double> values;
  values.reserve(response.results.size());
  for (const auto& r : response.results) {
    EXPECT_TRUE(r.ok()) << r.property << ": " << r.error;
    values.push_back(r.value);
  }
  return values;
}

TEST(EngineReduce, AutoThresholdSkipsSmallModels) {
  const test::SymmetricBanksModel model(8, 0.3, 0.2);  // 256 states
  engine::EngineOptions engineOptions;
  engineOptions.threads = 1;
  obs::MetricsRegistry metrics;
  engineOptions.metrics = &metrics;
  engine::AnalysisEngine eng(engineOptions);

  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = kBanksProperties;
  const auto response = eng.analyze(request);
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_FALSE(response.reduction.applied);
  EXPECT_FALSE(response.reduction.cacheHit);
  EXPECT_EQ(response.reduction.statesBefore, 0u);
  EXPECT_EQ(eng.stats().quotientBuilds, 0u);
}

TEST(EngineReduce, ForcedQuotientAppliesAndCaches) {
  const test::SymmetricBanksModel model(8, 0.3, 0.2);  // 256 -> 9 blocks
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = kBanksProperties;

  // Unreduced reference from a reduction-off engine.
  engine::EngineOptions engineOptions;
  engineOptions.threads = 1;
  obs::MetricsRegistry referenceMetrics;
  engineOptions.metrics = &referenceMetrics;
  engine::AnalysisEngine referenceEngine(engineOptions);
  request.options.reduction.quotient = reduce::Toggle::kOff;
  const auto reference = referenceEngine.analyze(request);
  ASSERT_TRUE(reference.ok()) << reference.error;
  const std::vector<double> referenceValues = engineValues(reference);

  obs::MetricsRegistry metrics;
  engineOptions.metrics = &metrics;
  engine::AnalysisEngine eng(engineOptions);
  request.options.reduction.quotient = reduce::Toggle::kOn;

  const auto first = eng.analyze(request);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_TRUE(first.reduction.applied);
  EXPECT_FALSE(first.reduction.cacheHit);
  EXPECT_EQ(first.reduction.statesBefore, 256u);
  EXPECT_EQ(first.reduction.statesAfter, 9u);
  EXPECT_LT(first.reduction.transitionsAfter, first.reduction.transitionsBefore);
  EXPECT_GT(first.reduction.refinementRounds, 0u);
  // The response still reports the full model; the quotient lives in
  // reduction.
  EXPECT_EQ(first.states, 256u);

  const std::vector<double> firstValues = engineValues(first);
  ASSERT_EQ(firstValues.size(), referenceValues.size());
  for (std::size_t i = 0; i < firstValues.size(); ++i) {
    // Exact by strong lumping, up to FP accumulation-order differences.
    EXPECT_NEAR(firstValues[i], referenceValues[i], 1e-9)
        << request.properties[i];
  }

  const auto second = eng.analyze(request);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.reduction.applied);
  EXPECT_TRUE(second.reduction.cacheHit);
  const std::vector<double> secondValues = engineValues(second);
  for (std::size_t i = 0; i < firstValues.size(); ++i) {
    EXPECT_EQ(secondValues[i], firstValues[i]) << request.properties[i];
  }

  const auto stats = eng.stats();
  EXPECT_EQ(stats.quotientBuilds, 1u);
  EXPECT_GE(stats.quotientHits, 1u);
}

TEST(EngineReduce, IdentityQuotientRecordedButNeverApplied) {
  // A random chain with distinct rows: the plan-aware partition cannot
  // merge anything, so the quotient is the identity and the engine keeps
  // the full model — but memoizes the outcome.
  const auto model = test::randomModel(30, 3, 0xC0FFEEu);
  engine::EngineOptions engineOptions;
  engineOptions.threads = 1;
  obs::MetricsRegistry metrics;
  engineOptions.metrics = &metrics;
  engine::AnalysisEngine eng(engineOptions);

  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F target ]", "R=? [ C<=25 ]"};
  request.options.reduction.quotient = reduce::Toggle::kOn;

  const auto first = eng.analyze(request);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.reduction.applied);
  EXPECT_FALSE(first.reduction.cacheHit);
  EXPECT_EQ(first.reduction.statesBefore, 30u);
  EXPECT_EQ(first.reduction.statesAfter, 30u);

  const auto second = eng.analyze(request);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_FALSE(second.reduction.applied);
  EXPECT_TRUE(second.reduction.cacheHit);
  EXPECT_EQ(eng.stats().quotientBuilds, 1u);

  // Identical full-model path both times: values are bitwise equal.
  const std::vector<double> a = engineValues(first);
  const std::vector<double> b = engineValues(second);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(EngineReduce, TracingOnOffByteIdentical) {
  const test::SymmetricBanksModel model(8, 0.3, 0.2);
  const auto runOnce = [&model] {
    engine::EngineOptions engineOptions;
    engineOptions.threads = 1;
    engine::AnalysisEngine eng(engineOptions);
    engine::AnalysisRequest request;
    request.model = &model;
    request.properties = kBanksProperties;
    request.options.reduction.quotient = reduce::Toggle::kOn;
    const auto response = eng.analyze(request);
    EXPECT_TRUE(response.ok()) << response.error;
    EXPECT_TRUE(response.reduction.applied);
    return engineValues(response);
  };

  obs::Tracer& tracer = obs::Tracer::global();
  tracer.setEnabled(false);
  const std::vector<double> off = runOnce();
  tracer.setEnabled(true);
  const std::vector<double> on = runOnce();
  tracer.setEnabled(false);
  tracer.clear();

  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i], on[i]) << kBanksProperties[i];
  }
}

TEST(EngineReduce, ThreadCountByteIdentical) {
  const test::SymmetricBanksModel model(8, 0.3, 0.2);
  std::vector<std::vector<double>> perThreadValues;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::EngineOptions engineOptions;
    engineOptions.threads = threads;
    engine::AnalysisEngine eng(engineOptions);
    engine::AnalysisRequest request;
    request.model = &model;
    request.properties = kBanksProperties;
    request.options.reduction.quotient = reduce::Toggle::kOn;
    const auto response = eng.analyze(request);
    ASSERT_TRUE(response.ok()) << response.error;
    EXPECT_TRUE(response.reduction.applied);
    perThreadValues.push_back(engineValues(response));
  }
  for (std::size_t t = 1; t < perThreadValues.size(); ++t) {
    ASSERT_EQ(perThreadValues[t].size(), perThreadValues[0].size());
    for (std::size_t i = 0; i < perThreadValues[0].size(); ++i) {
      EXPECT_EQ(perThreadValues[t][i], perThreadValues[0][i])
          << kBanksProperties[i] << " at pool size " << t;
    }
  }
}

// --- label/reward digest (satellite: cache-key extension) ---

TEST(SignatureDigest, EmptyDigestIsZero) {
  const dtmc::LabelRewardDigest digest;
  EXPECT_EQ(digest.hash(), 0u);
  EXPECT_EQ(digest.entries(), 0u);
}

TEST(SignatureDigest, OrderIndependent) {
  la::BitVector a(10);
  a.set(3);
  la::BitVector b(10);
  b.set(7);
  const std::vector<double> r{1.0, 2.0, 3.0};

  dtmc::LabelRewardDigest forward;
  forward.addMask(11, a);
  forward.addMask(22, b);
  forward.addReward("time", r);

  dtmc::LabelRewardDigest backward;
  backward.addReward("time", r);
  backward.addMask(22, b);
  backward.addMask(11, a);

  EXPECT_EQ(forward.hash(), backward.hash());
  EXPECT_EQ(forward.entries(), 3u);
}

TEST(SignatureDigest, DistinguishesContentFormulaAndName) {
  la::BitVector a(10);
  a.set(3);
  la::BitVector flipped(10);
  flipped.set(4);

  dtmc::LabelRewardDigest base;
  base.addMask(11, a);

  dtmc::LabelRewardDigest differentBits;
  differentBits.addMask(11, flipped);
  EXPECT_NE(base.hash(), differentBits.hash());

  // Same truth bits under a different formula are a different plan need.
  dtmc::LabelRewardDigest differentFormula;
  differentFormula.addMask(12, a);
  EXPECT_NE(base.hash(), differentFormula.hash());

  // Same words, different bit length (all-zero tails share bytes).
  la::BitVector short10(10);
  la::BitVector long12(12);
  dtmc::LabelRewardDigest shortDigest;
  shortDigest.addMask(11, short10);
  dtmc::LabelRewardDigest longDigest;
  longDigest.addMask(11, long12);
  EXPECT_NE(shortDigest.hash(), longDigest.hash());

  const std::vector<double> r{1.0, 2.0};
  dtmc::LabelRewardDigest namedA;
  namedA.addReward("time", r);
  dtmc::LabelRewardDigest namedB;
  namedB.addReward("energy", r);
  EXPECT_NE(namedA.hash(), namedB.hash());

  dtmc::LabelRewardDigest otherValues;
  otherValues.addReward("time", {1.0, 2.5});
  EXPECT_NE(namedA.hash(), otherValues.hash());
}

TEST(SignatureDigest, EqualInputsCollide) {
  // Two independently built digests over equal inputs must agree — that is
  // the quotient-cache sharing contract across requests.
  const auto model = test::randomModel(16, 2, 42);
  const auto build = dtmc::buildExplicit(model);
  const la::BitVector mask = build.dtmc.evalAtom(model, "target");
  const std::vector<double> reward = build.dtmc.evalReward(model, "");

  dtmc::LabelRewardDigest first;
  first.addMask(77, mask);
  first.addReward("", reward);
  dtmc::LabelRewardDigest second;
  second.addMask(77, mask);
  second.addReward("", reward);
  EXPECT_EQ(first.hash(), second.hash());
}

}  // namespace
}  // namespace mimostat
