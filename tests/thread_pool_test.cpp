// Lifecycle and contract tests for engine::ThreadPool: destruction with
// queued post() work, exception propagation out of run(), nested run() from
// inside a worker (incl. the 1-thread pool, where the caller must drain its
// own batch or deadlock), scheduling-independent results at 1/2/8 threads,
// and the MIMOSTAT_THREADS pool-size override.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/thread_pool.hpp"

namespace mimostat::engine {
namespace {

/// Scoped MIMOSTAT_THREADS value; restores the previous state on exit.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("MIMOSTAT_THREADS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("MIMOSTAT_THREADS", value, 1);
    } else {
      ::unsetenv("MIMOSTAT_THREADS");
    }
  }
  ~ScopedThreadsEnv() {
    if (had_) {
      ::setenv("MIMOSTAT_THREADS", saved_.c_str(), 1);
    } else {
      ::unsetenv("MIMOSTAT_THREADS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(ThreadPool, RunExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.run(std::move(tasks));
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueuedPostedWork) {
  // post() is fire-and-forget, but the destructor promises every queued task
  // still runs. Flood the queue, then destroy immediately.
  constexpr int kPosted = 200;
  auto counter = std::make_shared<std::atomic<int>>(0);
  {
    ThreadPool pool(2);
    for (int i = 0; i < kPosted; ++i) {
      pool.post([counter] { counter->fetch_add(1); });
    }
  }  // ~ThreadPool drains, then joins.
  EXPECT_EQ(counter->load(), kPosted);
}

TEST(ThreadPool, DestructorDrainsOnSingleThreadPool) {
  auto counter = std::make_shared<std::atomic<int>>(0);
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.post([counter] { counter->fetch_add(1); });
    }
  }
  EXPECT_EQ(counter->load(), 50);
}

TEST(ThreadPool, RunRethrowsFirstTaskException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([&completed, i] {
      if (i == 7) throw std::runtime_error("task 7 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.run(std::move(tasks)), std::runtime_error);
  // The batch completes before rethrow: every non-throwing task still ran.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, RunRethrowsWithMessageIntact) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::invalid_argument("bad orientation"); });
  try {
    pool.run(std::move(tasks));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    EXPECT_STREQ(err.what(), "bad orientation");
  }
}

TEST(ThreadPool, PoolSurvivesExceptionAndKeepsWorking) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> bad;
  bad.push_back([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.run(std::move(bad)), std::runtime_error);

  std::atomic<int> ran{0};
  std::vector<std::function<void()>> good;
  for (int i = 0; i < 8; ++i) good.push_back([&ran] { ran.fetch_add(1); });
  pool.run(std::move(good));
  EXPECT_EQ(ran.load(), 8);
}

void nestedFanOut(ThreadPool& pool, std::vector<double>& results) {
  // Outer batch: 4 tasks, each running an inner batch of 8 sub-tasks into
  // pre-assigned slots — request-level parallelism nesting property-group
  // parallelism, the engine's actual shape.
  std::vector<std::function<void()>> outer;
  for (int g = 0; g < 4; ++g) {
    outer.push_back([&pool, &results, g] {
      std::vector<std::function<void()>> inner;
      for (int i = 0; i < 8; ++i) {
        inner.push_back([&results, g, i] {
          results[static_cast<std::size_t>(g * 8 + i)] = g * 100.0 + i;
        });
      }
      pool.run(std::move(inner));
    });
  }
  pool.run(std::move(outer));
}

TEST(ThreadPool, NestedRunFromWorkerDoesNotDeadlock) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    std::vector<double> results(32, -1.0);
    nestedFanOut(pool, results);
    for (int g = 0; g < 4; ++g) {
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(results[static_cast<std::size_t>(g * 8 + i)],
                  g * 100.0 + i);
      }
    }
  }
}

TEST(ThreadPool, PreassignedSlotsIdenticalAcrossThreadCounts) {
  // The determinism contract: results live in pre-assigned slots, so the
  // output bytes cannot depend on the pool size or scheduling order.
  const auto runAt = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> slots(256, 0.0);
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      tasks.push_back([&slots, i] {
        double acc = 0.0;
        for (std::size_t j = 0; j <= i; ++j) acc += 1.0 / (1.0 + j);
        slots[i] = acc;
      });
    }
    pool.run(std::move(tasks));
    return slots;
  };
  const auto ref = runAt(1);
  EXPECT_EQ(runAt(2), ref);
  EXPECT_EQ(runAt(8), ref);
}

TEST(ThreadPool, ExplicitThreadCountIsHonored) {
  EXPECT_EQ(ThreadPool(1).threadCount(), 1u);
  EXPECT_EQ(ThreadPool(3).threadCount(), 3u);
  EXPECT_EQ(ThreadPool(8).threadCount(), 8u);
}

TEST(ThreadPool, EnvOverrideSetsDefaultPoolSize) {
  const ScopedThreadsEnv env("8");
  EXPECT_EQ(ThreadPool(0).threadCount(), 8u);
  // An explicit count always wins over the environment.
  EXPECT_EQ(ThreadPool(2).threadCount(), 2u);
}

TEST(ThreadPool, EnvOverrideIgnoresInvalidValues) {
  for (const char* bad : {"", "zero", "4x", "0"}) {
    SCOPED_TRACE(std::string("MIMOSTAT_THREADS=") + bad);
    const ScopedThreadsEnv env(bad);
    EXPECT_GE(ThreadPool(0).threadCount(), 1u);
  }
}

TEST(ThreadPool, EmptyRunIsANoOp) {
  ThreadPool pool(2);
  pool.run({});  // must not enqueue or block
}

}  // namespace
}  // namespace mimostat::engine
