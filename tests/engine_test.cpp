#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/analyzer.hpp"
#include "dtmc/builder.hpp"
#include "dtmc/signature.hpp"
#include "engine/engine.hpp"
#include "engine/thread_pool.hpp"
#include "mc/checker.hpp"
#include "mc/transient.hpp"
#include "pctl/parser.hpp"
#include "smc/smc.hpp"
#include "test_models.hpp"
#include "viterbi/model_reduced.hpp"

namespace mimostat {
namespace {

viterbi::ReducedViterbiModel smallViterbi() {
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  return viterbi::ReducedViterbiModel(params);
}

/// Seed-style reference: fresh build, one independent check per property
/// (each R=?[I=T] re-propagates from pi_0).
std::vector<double> perCallReference(const dtmc::Model& model,
                                     const std::vector<std::string>& props) {
  const auto build = dtmc::buildExplicit(model);
  const mc::Checker checker(build.dtmc, model);
  std::vector<double> values;
  values.reserve(props.size());
  for (const auto& p : props) values.push_back(checker.check(p).value);
  return values;
}

TEST(ModelSignature, StableAndStructural) {
  const auto model = smallViterbi();
  const auto a = dtmc::modelSignature(model);
  const auto b = dtmc::modelSignature(model);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_TRUE(a.exact);
  EXPECT_GT(a.states, 0u);

  const auto build = dtmc::buildExplicit(model);
  EXPECT_EQ(a.states, build.dtmc.numStates());

  // A different design must hash differently.
  viterbi::ViterbiParams other;
  other.tracebackLength = 4;
  const viterbi::ReducedViterbiModel otherModel(other);
  EXPECT_NE(dtmc::modelSignature(otherModel).hash, a.hash);
}

TEST(ModelSignature, RewardsDoNotAffectStructure) {
  // The cache stores transition structure only; rewards re-resolve through
  // the requesting model, so two models differing only in rewards share a
  // signature by design.
  auto plain = test::twoStateChain(0.3, 0.4);
  auto rewarded = test::twoStateChain(0.3, 0.4);
  rewarded.withRewards({0.0, 1.0});
  EXPECT_EQ(dtmc::modelSignature(plain).hash,
            dtmc::modelSignature(rewarded).hash);
}

TEST(ModelSignature, TruncatedProbeNeverAliasesExact) {
  const auto model = test::gamblersRuin(50, 0.5, 25);
  const auto exact = dtmc::modelSignature(model);
  dtmc::SignatureOptions tiny;
  tiny.maxStates = 5;
  const auto truncated = dtmc::modelSignature(model, tiny);
  EXPECT_TRUE(exact.exact);
  EXPECT_FALSE(truncated.exact);
  EXPECT_NE(exact.hash, truncated.hash);
}

TEST(TransientSweep, MatchesPerCallBitForBit) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withRewards({0.0, 1.0});
  const auto build = dtmc::buildExplicit(model);
  const auto reward = build.dtmc.evalReward(model, "");

  const std::vector<std::uint64_t> horizons{50, 1, 7, 7, 0, 23};
  const auto batched =
      mc::instantaneousRewardAtHorizons(build.dtmc, reward, horizons);
  ASSERT_EQ(batched.size(), horizons.size());
  for (std::size_t i = 0; i < horizons.size(); ++i) {
    EXPECT_EQ(batched[i],
              mc::instantaneousReward(build.dtmc, reward, horizons[i]))
        << "horizon " << horizons[i];
  }
}

TEST(TransientSweep, RefusesToRewind) {
  const auto model = test::twoStateChain(0.3, 0.4);
  const auto build = dtmc::buildExplicit(model);
  mc::TransientSweep sweep(build.dtmc);
  sweep.advanceTo(5);
  EXPECT_EQ(sweep.step(), 5u);
  EXPECT_THROW(sweep.advanceTo(4), std::invalid_argument);
}

TEST(Engine, BatchedSweepMatchesPerCallBitForBit) {
  const auto model = smallViterbi();
  std::vector<std::string> props;
  for (const std::uint64_t horizon : {1, 5, 10, 50, 100, 300}) {
    props.push_back("R=? [ I=" + std::to_string(horizon) + " ]");
  }
  props.push_back("R=? [ C<=100 ]");
  props.push_back("P=? [ G<=50 !flag ]");
  const auto reference = perCallReference(model, props);

  engine::AnalysisEngine eng;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = props;
  const auto response = eng.analyze(request);

  ASSERT_EQ(response.results.size(), props.size());
  EXPECT_EQ(response.backend, engine::Backend::kExact);
  for (std::size_t i = 0; i < props.size(); ++i) {
    ASSERT_TRUE(response.results[i].ok()) << response.results[i].error;
    EXPECT_EQ(response.results[i].property, props[i]);
    EXPECT_EQ(response.results[i].value, reference[i]) << props[i];
  }
  // The reward-horizon properties came from one shared sweep.
  EXPECT_TRUE(response.results[0].batched);
  EXPECT_TRUE(response.results[6].batched);
  EXPECT_FALSE(response.results[7].batched);
}

TEST(Engine, AnalyzerShimMatchesPerCallBitForBit) {
  const auto model = smallViterbi();
  const std::vector<std::uint64_t> horizons{1, 5, 25, 100, 300};
  std::vector<std::string> props;
  for (const auto h : horizons) {
    props.push_back("R=? [ I=" + std::to_string(h) + " ]");
  }
  const auto reference = perCallReference(model, props);

  const core::PerformanceAnalyzer analyzer(model);
  const auto reports = analyzer.sweepInstantaneous(horizons);
  ASSERT_EQ(reports.size(), horizons.size());
  for (std::size_t i = 0; i < horizons.size(); ++i) {
    EXPECT_EQ(reports[i].value, reference[i]) << props[i];
  }
}

TEST(Engine, SecondRequestSkipsBuild) {
  const auto model = smallViterbi();
  engine::AnalysisEngine eng;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"R=? [ I=10 ]"};

  const auto first = eng.analyze(request);
  EXPECT_FALSE(first.cacheHit);
  EXPECT_EQ(eng.buildCount(), 1u);

  const auto second = eng.analyze(request);
  EXPECT_TRUE(second.cacheHit);
  EXPECT_EQ(eng.buildCount(), 1u);
  EXPECT_EQ(eng.cacheHitCount(), 1u);
  EXPECT_EQ(second.results[0].value, first.results[0].value);

  // A structurally identical but distinct model object also hits.
  const auto clone = smallViterbi();
  engine::AnalysisRequest cloneRequest = request;
  cloneRequest.model = &clone;
  const auto third = eng.analyze(cloneRequest);
  EXPECT_TRUE(third.cacheHit);
  EXPECT_EQ(eng.buildCount(), 1u);
}

TEST(Engine, BuildOptionsArePartOfTheCacheKey) {
  // probFloor changes the built matrix, so floored and unfloored builds of
  // the same model must not share a cache entry.
  const auto model = smallViterbi();
  engine::AnalysisEngine eng;
  const auto plain = eng.ensureBuilt(model);
  dtmc::BuildOptions floored;
  floored.probFloor = 1e-3;
  bool hit = true;
  const auto flooredBuild = eng.ensureBuilt(model, floored, std::nullopt, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(plain->signature, flooredBuild->signature);
  EXPECT_EQ(eng.buildCount(), 2u);
}

TEST(Engine, AnalyzeAllIsolatesFailingRequests) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withRewards({0.0, 1.0});
  engine::AnalysisEngine eng;
  std::vector<engine::AnalysisRequest> requests(2);
  requests[0].model = nullptr;  // request-level failure
  requests[0].properties = {"R=? [ I=5 ]"};
  requests[1].model = &model;
  requests[1].properties = {"R=? [ I=5 ]"};
  const auto responses = eng.analyzeAll(requests);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].ok());
  EXPECT_FALSE(responses[0].error.empty());
  ASSERT_TRUE(responses[1].ok());
  EXPECT_GT(responses[1].results[0].value, 0.0);
}

TEST(Engine, ModelKeySkipsProbe) {
  const auto model = smallViterbi();
  engine::AnalysisEngine eng;
  bool hit = true;
  const auto built = eng.ensureBuilt(model, {}, std::nullopt, &hit);
  EXPECT_FALSE(hit);

  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"R=? [ I=10 ]"};
  request.options.modelKey = built->signature;
  const auto response = eng.analyze(request);
  EXPECT_TRUE(response.cacheHit);
  EXPECT_EQ(response.modelKey, built->signature);
  EXPECT_EQ(eng.buildCount(), 1u);
}

TEST(Engine, ConcurrentIdenticalRequestsAgree) {
  const auto model = smallViterbi();
  engine::AnalysisEngine eng(engine::EngineOptions{4, 8});
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"R=? [ I=100 ]", "R=? [ I=10 ]", "P=? [ G<=20 !flag ]",
                        "R=? [ C<=30 ]"};

  constexpr int kThreads = 8;
  std::vector<engine::AnalysisResponse> responses(kThreads);
  {
    // lint:allow(raw-thread: stress test drives the engine from client threads)
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { responses[i] = eng.analyze(request); });
    }
    for (auto& t : threads) t.join();
  }

  EXPECT_EQ(eng.buildCount(), 1u);  // concurrent requests share one build
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_EQ(responses[i].results.size(), request.properties.size());
    for (std::size_t p = 0; p < request.properties.size(); ++p) {
      ASSERT_TRUE(responses[i].results[p].ok());
      EXPECT_EQ(responses[i].results[p].value, responses[0].results[p].value)
          << "thread " << i << " property " << p;
      EXPECT_EQ(responses[i].results[p].property, request.properties[p]);
    }
  }
}

TEST(Engine, AnalyzeAllKeepsRequestOrder) {
  const auto chainA = test::gamblersRuin(20, 0.5, 10);
  auto chainB = test::twoStateChain(0.3, 0.4);
  chainB.withRewards({0.0, 1.0});

  engine::AnalysisEngine eng(engine::EngineOptions{2, 8});
  std::vector<engine::AnalysisRequest> requests(4);
  requests[0].model = &chainA;
  requests[0].properties = {"P=? [ F<=200 s=0 ]"};
  requests[1].model = &chainB;
  requests[1].properties = {"R=? [ I=50 ]"};
  requests[2].model = &chainA;
  requests[2].properties = {"P=? [ F<=200 s=20 ]"};
  requests[3].model = &chainB;
  requests[3].properties = {"R=? [ I=5 ]", "R=? [ I=500 ]"};

  const auto responses = eng.analyzeAll(requests);
  ASSERT_EQ(responses.size(), 4u);
  // Ruin vs win probabilities from the middle are symmetric for p=1/2.
  EXPECT_NEAR(responses[0].results[0].value, responses[2].results[0].value,
              1e-12);
  EXPECT_NEAR(responses[3].results[1].value, 0.3 / 0.7, 1e-9);
  EXPECT_LT(responses[3].results[0].value, responses[3].results[1].value);
  // chainA was built once, chainB once.
  EXPECT_EQ(eng.buildCount(), 2u);
}

TEST(Engine, SubmitResolvesAsynchronously) {
  const auto model = smallViterbi();
  engine::AnalysisEngine eng(engine::EngineOptions{2, 8});
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"R=? [ I=20 ]"};
  auto future = eng.submit(request);
  const auto response = future.get();
  ASSERT_EQ(response.results.size(), 1u);
  EXPECT_TRUE(response.results[0].ok());
  EXPECT_GT(response.results[0].value, 0.0);
}

TEST(Engine, AutoFallsBackToSamplingPastStateBudget) {
  const auto model = test::gamblersRuin(200, 0.5, 100);
  engine::AnalysisEngine eng;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F<=50 s=0 ]", "R=? [ I=10 ]", "R=? [ S ]"};
  request.options.stateBudget = 16;  // force the sampling backend
  request.options.smc.paths = 2000;

  const auto response = eng.analyze(request);
  EXPECT_EQ(response.backend, engine::Backend::kSampling);
  EXPECT_EQ(eng.buildCount(), 0u);  // sampling never materializes the DTMC

  ASSERT_TRUE(response.results[0].ok());
  EXPECT_TRUE(response.results[0].interval95.has_value());
  EXPECT_EQ(response.results[0].samples, 2000u);
  ASSERT_TRUE(response.results[1].ok());
  EXPECT_TRUE(response.results[1].interval95.has_value());
  // Steady-state rewards are not estimable by finite sampling.
  EXPECT_FALSE(response.results[2].ok());

  // The sampled estimate must agree with the exact value within the CI-ish
  // tolerance (F<=50 from the middle of a 200-rung ladder is ~0, so use the
  // instantaneous reward which is exactly 0 under the default reward).
  EXPECT_EQ(response.results[1].value, 0.0);
}

TEST(Engine, SamplingEstimateTracksExactValue) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withRewards({0.0, 1.0});

  engine::AnalysisEngine eng;
  engine::AnalysisRequest sampled;
  sampled.model = &model;
  sampled.properties = {"R=? [ I=40 ]"};
  sampled.options.backend = engine::Backend::kSampling;
  sampled.options.smc.paths = 20000;

  engine::AnalysisRequest exact = sampled;
  exact.options.backend = engine::Backend::kExact;

  const auto sampledResponse = eng.analyze(sampled);
  const auto exactResponse = eng.analyze(exact);
  ASSERT_TRUE(sampledResponse.results[0].ok());
  ASSERT_TRUE(exactResponse.results[0].ok());
  ASSERT_TRUE(sampledResponse.results[0].interval95.has_value());
  EXPECT_TRUE(sampledResponse.results[0].interval95->contains(
      exactResponse.results[0].value));
  EXPECT_NEAR(sampledResponse.results[0].value,
              exactResponse.results[0].value, 0.02);
}

TEST(Engine, SamplingSeedsArePerProperty) {
  // Each property samples its own derived stream: the engine's result for
  // property i must equal a standalone estimate seeded deriveSeed(seed, i),
  // so identical sibling properties see independent (different) streams.
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});

  engine::AnalysisEngine eng;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F<=5 \"one\" ]", "P=? [ F<=5 \"one\" ]"};
  request.options.backend = engine::Backend::kSampling;
  request.options.smc.paths = 4000;
  request.options.smc.seed = 17;

  const auto response = eng.analyze(request);
  ASSERT_TRUE(response.ok());
  const auto parsed = pctl::parseProperty("P=? [ F<=5 \"one\" ]");
  for (std::size_t i = 0; i < 2; ++i) {
    smc::SmcOptions expected = request.options.smc;
    expected.seed = smc::deriveSeed(request.options.smc.seed, i);
    const auto reference =
        smc::estimatePathProbability(model, parsed.prob.path, expected);
    EXPECT_EQ(response.results[i].value, reference.estimate())
        << "property " << i;
    EXPECT_EQ(response.results[i].samples, reference.satisfied.trials());
  }
  // The derived streams are distinct, so the sibling raw counts differ
  // (deterministic given the fixed seed — not a statistical assertion).
  EXPECT_NE(smc::deriveSeed(17, 0), smc::deriveSeed(17, 1));
}

TEST(Engine, SamplingIsDeterministicAcrossThreadCounts) {
  // Acceptance criterion: bit-identical sampling results for a fixed seed
  // at 1, 2 and 8 worker threads, across every estimable property form.
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1}).withRewards({0.0, 1.0});

  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F<=5 \"one\" ]", "R=? [ I=12 ]",
                        "R=? [ C<=12 ]", "P>=0.6 [ F<=5 \"one\" ]"};
  request.options.backend = engine::Backend::kSampling;
  request.options.smc.paths = 6000;
  request.options.smc.seed = 29;
  request.options.smc.chunkPaths = 512;

  std::vector<engine::AnalysisResponse> responses;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::AnalysisEngine eng(engine::EngineOptions{threads, 8});
    responses.push_back(eng.analyze(request));
  }
  for (std::size_t r = 1; r < responses.size(); ++r) {
    ASSERT_EQ(responses[r].results.size(), responses[0].results.size());
    for (std::size_t p = 0; p < responses[0].results.size(); ++p) {
      const auto& a = responses[0].results[p];
      const auto& b = responses[r].results[p];
      ASSERT_TRUE(a.ok()) << a.error;
      ASSERT_TRUE(b.ok()) << b.error;
      EXPECT_EQ(a.value, b.value) << "property " << p;
      EXPECT_EQ(a.samples, b.samples) << "property " << p;
      EXPECT_EQ(a.satisfied, b.satisfied) << "property " << p;
      ASSERT_EQ(a.interval95.has_value(), b.interval95.has_value());
      if (a.interval95 && b.interval95) {
        EXPECT_EQ(a.interval95->low, b.interval95->low);
        EXPECT_EQ(a.interval95->high, b.interval95->high);
      }
      EXPECT_EQ(a.sprt.has_value(), b.sprt.has_value());
      if (a.sprt && b.sprt) {
        EXPECT_EQ(a.sprt->pathsUsed, b.sprt->pathsUsed);
        EXPECT_EQ(a.sprt->decided, b.sprt->decided);
      }
    }
  }
}

TEST(Engine, SprtDecidesBoundedProbabilityWithGuarantees) {
  // P(F<=5 "one") ~ 0.832: thresholds straddling the truth must accept and
  // reject with the requested alpha/beta attached to the verdict.
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});

  engine::AnalysisEngine eng;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P>=0.6 [ F<=5 \"one\" ]", "P>=0.95 [ F<=5 \"one\" ]",
                        "P<=0.95 [ F<=5 \"one\" ]"};
  request.options.backend = engine::Backend::kSampling;
  request.options.smc.seed = 5;
  request.options.sprt.alpha = 0.001;
  request.options.sprt.beta = 0.002;
  request.options.sprt.indifference = 0.05;

  const auto response = eng.analyze(request);
  ASSERT_TRUE(response.ok());
  for (const auto& result : response.results) {
    ASSERT_TRUE(result.sprt.has_value()) << result.property;
    EXPECT_TRUE(result.sprt->decided) << result.property;
    EXPECT_GT(result.sprt->pathsUsed, 0u);
    EXPECT_EQ(result.sprt->alpha, 0.001);
    EXPECT_EQ(result.sprt->beta, 0.002);
    EXPECT_GT(result.sprt->indifference, 0.0);
    EXPECT_EQ(result.samples, result.sprt->pathsUsed);
    // The SPRT stops early — far fewer paths than a fixed-n estimate, and
    // its free point estimate rides along. No interval95: adaptive stopping
    // voids fixed-sample coverage, the guarantee is alpha/beta.
    EXPECT_GT(result.value, 0.0);
    EXPECT_FALSE(result.interval95.has_value());
  }
  EXPECT_TRUE(response.results[0].satisfied);   // 0.6 < 0.832
  EXPECT_FALSE(response.results[1].satisfied);  // 0.95 > 0.832
  EXPECT_TRUE(response.results[2].satisfied);   // upper-bound claim holds
}

TEST(Engine, SamplingHandlesEveryExactRewardForm) {
  // No listed property form may fall through to the "requires the exact
  // backend" error; unbounded/steady-state forms still must.
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1}).withRewards({0.0, 1.0});

  engine::AnalysisEngine eng;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F<=5 \"one\" ]", "P>=0.5 [ F<=5 \"one\" ]",
                        "R=? [ I=10 ]", "R=? [ C<=10 ]", "R=? [ S ]",
                        "P=? [ F \"one\" ]"};
  request.options.backend = engine::Backend::kSampling;
  request.options.smc.paths = 2000;

  const auto response = eng.analyze(request);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(response.results[i].ok()) << response.results[i].error;
  }
  EXPECT_FALSE(response.results[4].ok());  // steady state: exact only
  EXPECT_FALSE(response.results[5].ok());  // unbounded F: exact only

  // The sampled cumulative reward brackets the exact value.
  engine::AnalysisRequest exact = request;
  exact.properties = {"R=? [ C<=10 ]"};
  exact.options.backend = engine::Backend::kExact;
  const auto exactResponse = eng.analyze(exact);
  ASSERT_TRUE(exactResponse.ok());
  ASSERT_TRUE(response.results[3].interval95.has_value());
  EXPECT_TRUE(response.results[3].interval95->contains(
      exactResponse.results[0].value))
      << "exact " << exactResponse.results[0].value << " sampled "
      << response.results[3].value;
}

TEST(Engine, BackendsAgreeOnTransitionlessStates) {
  // The absorbing convention for dead-end states is shared: the builder
  // materializes the self-loop the sampler assumes, so exact and sampling
  // answers agree on models with transition-less states.
  test::MatrixModel model({{0.0, 1.0}, {0.0, 0.0}});  // state 1 is a dead end
  model.withRewards({0.0, 1.0});

  engine::AnalysisEngine eng;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F<=3 s=1 ]", "R=? [ I=5 ]", "R=? [ C<=5 ]"};
  request.options.smc.paths = 500;

  engine::AnalysisRequest sampled = request;
  sampled.options.backend = engine::Backend::kSampling;
  request.options.backend = engine::Backend::kExact;

  const auto exact = eng.analyze(request);
  const auto estimate = eng.analyze(sampled);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(estimate.ok());
  // The chain is deterministic, so even the sampled values are exact.
  EXPECT_EQ(exact.results[0].value, 1.0);  // reaches the dead end
  EXPECT_EQ(exact.results[1].value, 1.0);  // absorbed, reward 1 at T=5
  EXPECT_EQ(exact.results[2].value, 4.0);  // rewards at t=1..4
  for (std::size_t p = 0; p < request.properties.size(); ++p) {
    EXPECT_EQ(exact.results[p].value, estimate.results[p].value)
        << request.properties[p];
  }

  // The signature probe applies the same convention: its transition count
  // includes the implicit self-loop, and a model spelling the self-loop out
  // explicitly shares the cache key.
  const auto sig = dtmc::modelSignature(model);
  EXPECT_EQ(sig.transitions, dtmc::buildExplicit(model).dtmc.numTransitions());
  test::MatrixModel explicitLoop({{0.0, 1.0}, {0.0, 1.0}});
  EXPECT_EQ(sig.hash, dtmc::modelSignature(explicitLoop).hash);
}

TEST(ModelSignature, WideLayoutFallsBackToVectorProbe) {
  // A layout wider than 64 bits cannot pack; the probe must still work via
  // the vector-state path.
  class WideModel : public dtmc::Model {
   public:
    [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override {
      return {{"a", 0, 0x7FFFFFFF}, {"b", 0, 0x7FFFFFFF},
              {"c", 0, 0x7FFFFFFF}};
    }
    [[nodiscard]] std::vector<dtmc::State> initialStates() const override {
      return {{0, 0, 0}};
    }
    void transitions(const dtmc::State& s,
                     std::vector<dtmc::Transition>& out) const override {
      dtmc::State next = s;
      next[0] = (s[0] + 1) % 3;
      out.push_back({1.0, next});
    }
  };
  WideModel model;
  EXPECT_FALSE(model.layout().fitsInU64());
  const auto sig = dtmc::modelSignature(model);
  EXPECT_TRUE(sig.exact);
  EXPECT_EQ(sig.states, 3u);
  EXPECT_EQ(sig.hash, dtmc::modelSignature(model).hash);
}

TEST(ModelSignature, PackedProbeMatchesBuildCounts) {
  // gamblersRuin packs into u64, so the probe takes the PackedStateSet
  // path; its state/transition counts must match the explicit build.
  const auto model = test::gamblersRuin(64, 0.4, 32);
  ASSERT_TRUE(model.layout().fitsInU64());
  const auto sig = dtmc::modelSignature(model);
  const auto build = dtmc::buildExplicit(model);
  EXPECT_TRUE(sig.exact);
  EXPECT_EQ(sig.states, build.dtmc.numStates());
  EXPECT_EQ(sig.transitions, build.dtmc.numTransitions());
}

TEST(Engine, ParseErrorIsPerProperty) {
  const auto model = smallViterbi();
  engine::AnalysisEngine eng;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"R=? [ I=10 ]", "this is not pctl", "R=? [ I=20 ]"};
  const auto response = eng.analyze(request);
  EXPECT_TRUE(response.results[0].ok());
  EXPECT_FALSE(response.results[1].ok());
  EXPECT_TRUE(response.results[2].ok());
  EXPECT_FALSE(response.ok());
}

TEST(Engine, CacheEvictsLeastRecentlyUsed) {
  engine::AnalysisEngine eng(engine::EngineOptions{1, 2});
  std::vector<test::MatrixModel> models;
  models.reserve(4);
  for (int i = 0; i < 4; ++i) {
    models.push_back(test::gamblersRuin(10 + i, 0.5, 5));
  }
  for (auto& model : models) {
    (void)eng.ensureBuilt(model);
  }
  EXPECT_EQ(eng.buildCount(), 4u);
  EXPECT_LE(eng.cachedModelCount(), 2u);

  // The most recent entry is still cached; the oldest is gone.
  bool hit = false;
  (void)eng.ensureBuilt(models[3], {}, std::nullopt, &hit);
  EXPECT_TRUE(hit);
  (void)eng.ensureBuilt(models[0], {}, std::nullopt, &hit);
  EXPECT_FALSE(hit);
}

TEST(Engine, StatsTrackCacheBytes) {
  const auto model = smallViterbi();
  engine::AnalysisEngine eng;
  const auto built = eng.ensureBuilt(model);
  EXPECT_GT(built->approxBytes, 0u);
  EXPECT_EQ(built->approxBytes, engine::approxDtmcBytes(built->dtmc));

  const auto stats = eng.stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.cacheHits, 0u);
  EXPECT_EQ(stats.cachedModels, 1u);
  EXPECT_EQ(stats.cacheBytes, built->approxBytes);

  eng.clearModelCache();
  EXPECT_EQ(eng.stats().cacheBytes, 0u);
  EXPECT_EQ(eng.stats().cachedModels, 0u);
}

TEST(Engine, ByteBudgetEvictsSoOneHugeModelCannotPinTheCache) {
  // Budget fits either ruin chain alone but not both: building the second
  // must evict the first even though the entry-count limit (8) is far off.
  const auto first = test::gamblersRuin(60, 0.5, 30);
  const auto second = test::gamblersRuin(80, 0.5, 40);

  engine::EngineOptions options;
  options.threads = 1;
  {
    engine::AnalysisEngine probe(options);
    const auto a = probe.ensureBuilt(first);
    const auto b = probe.ensureBuilt(second);
    options.maxCacheBytes = a->approxBytes + b->approxBytes - 1;
  }

  engine::AnalysisEngine eng(options);
  (void)eng.ensureBuilt(first);
  (void)eng.ensureBuilt(second);
  EXPECT_EQ(eng.buildCount(), 2u);
  EXPECT_EQ(eng.stats().cachedModels, 1u);
  EXPECT_LE(eng.stats().cacheBytes, options.maxCacheBytes);

  // The survivor is the most recently used entry.
  bool hit = false;
  (void)eng.ensureBuilt(second, {}, std::nullopt, &hit);
  EXPECT_TRUE(hit);
  (void)eng.ensureBuilt(first, {}, std::nullopt, &hit);
  EXPECT_FALSE(hit);
}

TEST(Engine, SingleOverBudgetModelStaysResident) {
  // A model bigger than the whole byte budget must not thrash: the byte
  // budget never evicts the last entry, so repeat requests still hit.
  engine::EngineOptions options;
  options.threads = 1;
  options.maxCacheBytes = 1;
  engine::AnalysisEngine eng(options);
  const auto model = test::gamblersRuin(40, 0.5, 20);
  (void)eng.ensureBuilt(model);
  EXPECT_EQ(eng.stats().cachedModels, 1u);
  bool hit = false;
  (void)eng.ensureBuilt(model, {}, std::nullopt, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(eng.buildCount(), 1u);
}

TEST(PropertyCache, SharedAcrossEngineAndCheckers) {
  // One injected cache serves the engine and every checker: the property is
  // parsed once, every later consumer hits.
  pctl::PropertyCache cache;
  const auto model = smallViterbi();

  engine::EngineOptions options;
  options.threads = 1;
  options.propertyCache = &cache;
  engine::AnalysisEngine eng(options);
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"R=? [ I=10 ]"};
  const auto response = eng.analyze(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  const auto build = dtmc::buildExplicit(model);
  const mc::Checker checker(build.dtmc, model, {}, &cache);
  const auto result = checker.check("R=? [ I=10 ]");
  EXPECT_EQ(result.value, response.results[0].value);
  EXPECT_EQ(cache.size(), 1u);  // no re-parse, no second entry
  EXPECT_GE(cache.hits(), 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PropertyCache, EntryCapBoundsGrowth) {
  // The cap flushes wholesale: the map can never exceed maxEntries, so the
  // process-wide cache cannot grow without bound under per-point property
  // strings.
  pctl::PropertyCache cache(2);
  (void)cache.get("R=? [ I=1 ]");
  (void)cache.get("R=? [ I=2 ]");
  EXPECT_EQ(cache.size(), 2u);
  (void)cache.get("R=? [ I=3 ]");  // at the cap: flush, then insert
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get("R=? [ I=3 ]").reward.bound, 3u);  // still served
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(PropertyCache, DefaultsToProcessWideGlobal) {
  pctl::PropertyCache& global = pctl::PropertyCache::global();
  const std::string unique = "R=? [ I=987654 ]";
  const std::uint64_t missesBefore = global.misses();
  const auto model = smallViterbi();
  const auto build = dtmc::buildExplicit(model);
  const mc::Checker checkerA(build.dtmc, model);
  const mc::Checker checkerB(build.dtmc, model);
  (void)checkerA.parsedProperty(unique);
  (void)checkerB.parsedProperty(unique);  // hits A's parse
  engine::AnalysisEngine eng;
  (void)eng.parsedProperty(unique);  // engine shares the same cache
  EXPECT_EQ(global.misses(), missesBefore + 1);
}

TEST(Checker, ParseCacheReturnsConsistentResults) {
  const auto model = smallViterbi();
  const auto build = dtmc::buildExplicit(model);
  const mc::Checker checker(build.dtmc, model);
  const auto first = checker.check("R=? [ I=25 ]");
  const auto second = checker.check("R=? [ I=25 ]");
  EXPECT_EQ(first.value, second.value);
  const auto parsed = checker.parsedProperty("R=? [ I=25 ]");
  EXPECT_EQ(parsed.reward.bound, 25u);
}

TEST(ThreadPool, RunsAllTasksAndPropagatesExceptions) {
  engine::ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&counter] { ++counter; });
  }
  pool.run(std::move(tasks));
  EXPECT_EQ(counter.load(), 64);

  std::vector<std::function<void()>> failing;
  failing.push_back([] { throw std::runtime_error("boom"); });
  failing.push_back([&counter] { ++counter; });
  EXPECT_THROW(pool.run(std::move(failing)), std::runtime_error);
}

TEST(ThreadPool, NestedRunDoesNotDeadlock) {
  engine::ThreadPool pool(1);  // worst case: a single worker
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) {
        inner.push_back([&counter] { ++counter; });
      }
      pool.run(std::move(inner));
    });
  }
  pool.run(std::move(outer));
  EXPECT_EQ(counter.load(), 32);
}

}  // namespace
}  // namespace mimostat
