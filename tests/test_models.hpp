// Shared hand-written DTMC models for the test suite: explicit matrices
// with closed-form answers, parameterized random chains, and structural
// corner cases.
#pragma once

#include <cassert>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dtmc/model.hpp"
#include "util/rng.hpp"

namespace mimostat::test {

/// DTMC given directly as a dense transition matrix over one variable "s".
/// Optional labels (name -> per-state truth) and per-state default rewards.
class MatrixModel : public dtmc::Model {
 public:
  MatrixModel(std::vector<std::vector<double>> matrix,
              std::vector<std::uint32_t> initial = {0})
      : matrix_(std::move(matrix)), initial_(std::move(initial)) {
    rewards_.assign(matrix_.size(), 0.0);
  }

  MatrixModel& withLabel(std::string name, std::vector<std::uint8_t> truth) {
    labels_.emplace_back(std::move(name), std::move(truth));
    return *this;
  }
  MatrixModel& withRewards(std::vector<double> rewards) {
    rewards_ = std::move(rewards);
    return *this;
  }

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override {
    return {{"s", 0, static_cast<std::int32_t>(matrix_.size()) - 1}};
  }
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override {
    std::vector<dtmc::State> states;
    for (const auto i : initial_) {
      states.push_back({static_cast<std::int32_t>(i)});
    }
    return states;
  }
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override {
    const auto row = static_cast<std::size_t>(s[0]);
    for (std::size_t j = 0; j < matrix_[row].size(); ++j) {
      if (matrix_[row][j] > 0.0) {
        out.push_back({matrix_[row][j], {static_cast<std::int32_t>(j)}});
      }
    }
  }
  [[nodiscard]] bool atom(const dtmc::State& s,
                          std::string_view name) const override {
    for (const auto& [labelName, truth] : labels_) {
      if (labelName == name) return truth[static_cast<std::size_t>(s[0])] != 0;
    }
    return false;
  }
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view /*name*/) const override {
    return rewards_[static_cast<std::size_t>(s[0])];
  }

 private:
  std::vector<std::vector<double>> matrix_;
  std::vector<std::uint32_t> initial_;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> labels_;
  std::vector<double> rewards_;
};

/// Two-state chain with P(0->1)=a, P(1->0)=b — closed-form transients.
inline MatrixModel twoStateChain(double a, double b) {
  return MatrixModel({{1.0 - a, a}, {b, 1.0 - b}});
}

/// Deterministic line 0 -> 1 -> ... -> n-1 (absorbing).
inline MatrixModel lineModel(std::uint32_t n) {
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::uint32_t i = 0; i + 1 < n; ++i) matrix[i][i + 1] = 1.0;
  matrix[n - 1][n - 1] = 1.0;
  return MatrixModel(std::move(matrix));
}

/// Directed cycle of length n (period n).
inline MatrixModel cycleModel(std::uint32_t n) {
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::uint32_t i = 0; i < n; ++i) matrix[i][(i + 1) % n] = 1.0;
  return MatrixModel(std::move(matrix));
}

/// Gambler's ruin on 0..n starting at `start`: win prob p, states 0 and n
/// absorbing. For p = 1/2 the ruin probability from i is 1 - i/n.
inline MatrixModel gamblersRuin(std::uint32_t n, double p,
                                std::uint32_t start) {
  std::vector<std::vector<double>> matrix(n + 1,
                                          std::vector<double>(n + 1, 0.0));
  matrix[0][0] = 1.0;
  matrix[n][n] = 1.0;
  for (std::uint32_t i = 1; i < n; ++i) {
    matrix[i][i + 1] = p;
    matrix[i][i - 1] = 1.0 - p;
  }
  return MatrixModel(std::move(matrix), {start});
}

/// Random stochastic matrix with the given fan-out per row; strictly
/// positive probabilities; random labels/rewards derived from the seed.
inline MatrixModel randomModel(std::uint32_t n, std::uint32_t fanout,
                               std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (std::uint32_t i = 0; i < n; ++i) {
    double total = 0.0;
    for (std::uint32_t k = 0; k < fanout; ++k) {
      const auto j = static_cast<std::uint32_t>(rng.nextBounded(n));
      const double w = rng.nextDouble() + 0.05;
      matrix[i][j] += w;
      total += w;
    }
    for (auto& v : matrix[i]) v /= total;
  }
  std::vector<std::uint8_t> target(n, 0);
  std::vector<double> rewards(n, 0.0);
  for (std::uint32_t i = 0; i < n; ++i) {
    target[i] = rng.nextDouble() < 0.3 ? 1 : 0;
    rewards[i] = target[i] ? 1.0 : 0.0;
  }
  MatrixModel model(std::move(matrix));
  model.withLabel("target", std::move(target)).withRewards(std::move(rewards));
  return model;
}

/// k identical independent sub-chains observed through a symmetric reward —
/// a toy model with a block symmetry, used by the symmetry tests.
/// Variables: c0..c_{k-1}, each a two-state chain (P(0->1)=a, P(1->0)=b);
/// reward = number of components in state 1.
class SymmetricBanksModel : public dtmc::Model {
 public:
  SymmetricBanksModel(int k, double a, double b) : k_(k), a_(a), b_(b) {}

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override {
    std::vector<dtmc::VarSpec> vars;
    for (int i = 0; i < k_; ++i) {
      vars.push_back({"c" + std::to_string(i), 0, 1});
    }
    return vars;
  }
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override {
    return {dtmc::State(static_cast<std::size_t>(k_), 0)};
  }
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override {
    // Product of independent per-component flips.
    std::vector<dtmc::Transition> partial{{1.0, {}}};
    for (int i = 0; i < k_; ++i) {
      std::vector<dtmc::Transition> next;
      const double flip = s[static_cast<std::size_t>(i)] == 0 ? a_ : b_;
      for (const auto& t : partial) {
        dtmc::State stay = t.target;
        stay.push_back(s[static_cast<std::size_t>(i)]);
        next.push_back({t.prob * (1.0 - flip), std::move(stay)});
        dtmc::State flipped = t.target;
        flipped.push_back(1 - s[static_cast<std::size_t>(i)]);
        next.push_back({t.prob * flip, std::move(flipped)});
      }
      partial = std::move(next);
    }
    for (auto& t : partial) out.push_back(std::move(t));
  }
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view /*name*/) const override {
    double count = 0.0;
    for (const auto v : s) count += v;
    return count;
  }
  [[nodiscard]] bool atom(const dtmc::State& s,
                          std::string_view name) const override {
    if (name == "any") {
      for (const auto v : s) {
        if (v != 0) return true;
      }
    }
    return false;
  }

 private:
  int k_;
  double a_;
  double b_;
};

}  // namespace mimostat::test
