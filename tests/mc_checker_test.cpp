#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest()
      : model_(test::twoStateChain(0.3, 0.4)),
        build_((model_.withLabel("one", {0, 1}).withRewards({0.0, 1.0}),
                dtmc::buildExplicit(model_))),
        checker_(build_.dtmc, model_) {}

  test::MatrixModel model_;
  dtmc::BuildResult build_;
  mc::Checker checker_;
};

double twoStateP1(double a, double b, std::uint64_t t) {
  return a / (a + b) * (1.0 - std::pow(1.0 - a - b, static_cast<double>(t)));
}

TEST_F(CheckerTest, InstantaneousReward) {
  const auto result = checker_.check("R=? [ I=10 ]");
  EXPECT_NEAR(result.value, twoStateP1(0.3, 0.4, 10), 1e-12);
}

TEST_F(CheckerTest, BoundedFinallyOnAtom) {
  // F<=1 "one" from state 0: reach state 1 within one step = 0.3.
  const auto result = checker_.check("P=? [ F<=1 \"one\" ]");
  EXPECT_NEAR(result.value, 0.3, 1e-12);
}

TEST_F(CheckerTest, BoundedGloballyComplement) {
  const auto g = checker_.check("P=? [ G<=5 !\"one\" ]");
  const auto f = checker_.check("P=? [ F<=5 \"one\" ]");
  EXPECT_NEAR(g.value, 1.0 - f.value, 1e-12);
}

TEST_F(CheckerTest, VarComparisonFormula) {
  const auto result = checker_.check("P=? [ F<=1 s=1 ]");
  EXPECT_NEAR(result.value, 0.3, 1e-12);
  const auto ge = checker_.check("P=? [ F<=1 s>=1 ]");
  EXPECT_NEAR(ge.value, 0.3, 1e-12);
}

TEST_F(CheckerTest, BareIdentifierResolvesToVariable) {
  // "s" used as a bare atom means s != 0.
  const auto viaVar = checker_.check("P=? [ F<=2 s ]");
  const auto viaCmp = checker_.check("P=? [ F<=2 s!=0 ]");
  EXPECT_NEAR(viaVar.value, viaCmp.value, 1e-15);
}

TEST_F(CheckerTest, ProbabilityBoundSatisfaction) {
  const auto sat = checker_.check("P>=0.2 [ F<=1 \"one\" ]");
  EXPECT_TRUE(sat.satisfied);
  const auto unsat = checker_.check("P>=0.9 [ F<=1 \"one\" ]");
  EXPECT_FALSE(unsat.satisfied);
}

TEST_F(CheckerTest, RewardBoundSatisfaction) {
  const auto result = checker_.check("R<=0.9 [ I=100 ]");
  EXPECT_TRUE(result.satisfied);
}

TEST_F(CheckerTest, SteadyStateReward) {
  const auto result = checker_.check("R=? [ S ]");
  EXPECT_NEAR(result.value, 0.3 / 0.7, 1e-9);
}

TEST_F(CheckerTest, CumulativeReward) {
  const auto result = checker_.check("R=? [ C<=3 ]");
  double manual = 0.0;
  for (std::uint64_t t = 0; t < 3; ++t) manual += twoStateP1(0.3, 0.4, t);
  EXPECT_NEAR(result.value, manual, 1e-12);
}

TEST_F(CheckerTest, UnboundedFinally) {
  const auto result = checker_.check("P=? [ F \"one\" ]");
  EXPECT_NEAR(result.value, 1.0, 1e-9);  // irreducible: reaches eventually
}

TEST_F(CheckerTest, NextOperator) {
  const auto result = checker_.check("P=? [ X \"one\" ]");
  EXPECT_NEAR(result.value, 0.3, 1e-15);
}

TEST_F(CheckerTest, UnknownVariableThrows) {
  EXPECT_THROW(checker_.check("P=? [ F<=1 bogus>2 ]"), std::runtime_error);
}

TEST_F(CheckerTest, BooleanConnectives) {
  const auto t = checker_.check("P=? [ F<=0 true ]");
  EXPECT_NEAR(t.value, 1.0, 1e-15);
  const auto f = checker_.check("P=? [ F<=100 false ]");
  EXPECT_NEAR(f.value, 0.0, 1e-15);
  const auto andOr =
      checker_.check("P=? [ F<=1 (\"one\" & s=1) | false ]");
  EXPECT_NEAR(andOr.value, 0.3, 1e-12);
}

TEST(CheckerUnbounded, ExpectedReachabilityReward) {
  // Fair gambler's ruin from i on [0,n] with unit step rewards:
  // expected absorption time = i*(n-i).
  auto model = test::gamblersRuin(6, 0.5, 2);
  std::vector<double> rewards(7, 1.0);
  rewards[0] = 0.0;
  rewards[6] = 0.0;
  // MatrixModel rewards index by matrix state id = variable value here.
  model.withRewards(std::move(rewards));
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  EXPECT_NEAR(checker.check("R=? [ F s=0 | s=6 ]").value, 2.0 * 4.0, 1e-7);
}

TEST(CheckerUnbounded, ReachRewardInfiniteWhenTargetUnreachable) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withRewards({1.0, 1.0});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const auto result = checker.check("R=? [ F s=7 ]");
  EXPECT_TRUE(std::isinf(result.value));
}

TEST(CheckerUnbounded, UntilOnGamblersRuin) {
  const auto model = test::gamblersRuin(4, 0.5, 2);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const auto result = checker.check("P=? [ s>0 U s=4 ]");
  EXPECT_NEAR(result.value, 0.5, 1e-9);
  const auto g = checker.check("P=? [ G s>=0 ]");
  EXPECT_NEAR(g.value, 1.0, 1e-12);
}

}  // namespace
}  // namespace mimostat
