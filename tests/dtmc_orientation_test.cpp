// dtmc::BuildOptions::orientation: single-orientation builds must keep the
// queries their resident CSR supports bit-identical to a kBoth build, and
// bounded path formulas must refuse transpose-only models with a clear
// error (they advance through the original row orientation). The engine's
// model cache must key on the orientation so mixed-orientation requests
// never alias.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "engine/engine.hpp"
#include "mc/bounded.hpp"
#include "mc/checker.hpp"
#include "mc/transient.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

test::MatrixModel labeledChain() {
  return test::MatrixModel({{0.5, 0.5, 0.0},
                            {0.0, 0.2, 0.8},
                            {0.1, 0.0, 0.9}})
      .withLabel("goal", {0, 0, 1})
      .withRewards({1.0, 2.0, 4.0});
}

bool bitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(Orientation, DefaultBuildKeepsBothOrientations) {
  const auto model = labeledChain();
  const auto build = dtmc::buildExplicit(model);
  EXPECT_TRUE(build.dtmc.matrix().hasOriginal());
  EXPECT_TRUE(build.dtmc.matrix().hasTranspose());
}

TEST(Orientation, SingleOrientationBuildsDropTheOther) {
  const auto model = labeledChain();

  dtmc::BuildOptions forwardOnly;
  forwardOnly.orientation = la::KeepOrientation::kOriginalOnly;
  const auto forward = dtmc::buildExplicit(model, forwardOnly);
  EXPECT_TRUE(forward.dtmc.matrix().hasOriginal());
  EXPECT_FALSE(forward.dtmc.matrix().hasTranspose());

  dtmc::BuildOptions backwardOnly;
  backwardOnly.orientation = la::KeepOrientation::kTransposeOnly;
  const auto backward = dtmc::buildExplicit(model, backwardOnly);
  EXPECT_FALSE(backward.dtmc.matrix().hasOriginal());
  EXPECT_TRUE(backward.dtmc.matrix().hasTranspose());
}

TEST(Orientation, TransposeOnlySupportsTransientAndSteadyBitIdentically) {
  const auto model = labeledChain();
  const auto both = dtmc::buildExplicit(model);
  dtmc::BuildOptions options;
  options.orientation = la::KeepOrientation::kTransposeOnly;
  const auto transposeOnly = dtmc::buildExplicit(model, options);

  const mc::Checker reference(both.dtmc, model);
  const mc::Checker checker(transposeOnly.dtmc, model);
  for (const char* prop : {"R=? [ S ]", "R=? [ I=25 ]", "R=? [ C<=25 ]"}) {
    SCOPED_TRACE(prop);
    EXPECT_EQ(checker.check(prop).value, reference.check(prop).value);
  }
  EXPECT_TRUE(bitEqual(mc::transientDistribution(transposeOnly.dtmc, 12),
                       mc::transientDistribution(both.dtmc, 12)));
}

TEST(Orientation, BoundedOperatorsRefuseTransposeOnlyModels) {
  const auto model = labeledChain();
  dtmc::BuildOptions options;
  options.orientation = la::KeepOrientation::kTransposeOnly;
  const auto build = dtmc::buildExplicit(model, options);
  const la::BitVector phi(3, true);
  la::BitVector psi(3);
  psi.set(2);

  const auto expectRefusal = [](const auto& callable) {
    try {
      callable();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& err) {
      // The message must name the rebuild option, not just fail opaquely.
      EXPECT_NE(std::string(err.what()).find("BuildOptions::orientation"),
                std::string::npos)
          << err.what();
    }
  };
  expectRefusal([&] { (void)mc::boundedUntil(build.dtmc, phi, psi, 5); });
  expectRefusal([&] { (void)mc::boundedFinally(build.dtmc, psi, 5); });
  expectRefusal([&] { (void)mc::boundedGlobally(build.dtmc, phi, 5); });
  expectRefusal([&] { (void)mc::nextProb(build.dtmc, psi); });
}

TEST(Orientation, CheckerRefusesBoundedButAnswersSiblings) {
  const auto model = labeledChain();
  dtmc::BuildOptions options;
  options.orientation = la::KeepOrientation::kTransposeOnly;
  const auto build = dtmc::buildExplicit(model, options);
  const auto reference = dtmc::buildExplicit(model);

  const mc::Checker checker(build.dtmc, model);
  const mc::Checker refChecker(reference.dtmc, model);

  // check() rethrows the clear refusal for a bounded formula (the plan
  // captures it, so it surfaces as a runtime_error with the message intact)…
  try {
    (void)checker.check("P=? [ F<=5 \"goal\" ]");
    FAIL() << "expected the orientation refusal to be thrown";
  } catch (const std::exception& err) {
    EXPECT_NE(std::string(err.what()).find("BuildOptions::orientation"),
              std::string::npos)
        << err.what();
  }

  // ...and checkAll captures it per property while the transient/steady
  // siblings in the same plan still answer, bit-identical to kBoth.
  const std::vector<pctl::Property> props = {
      checker.parsedProperty("P=? [ F<=5 \"goal\" ]"),
      checker.parsedProperty("R=? [ I=10 ]"),
      checker.parsedProperty("R=? [ S ]"),
  };
  const auto results = checker.checkAll(props);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_NE(results[0].error.find("orientation"), std::string::npos)
      << results[0].error;
  ASSERT_TRUE(results[1].ok()) << results[1].error;
  ASSERT_TRUE(results[2].ok()) << results[2].error;
  EXPECT_EQ(results[1].value, refChecker.check("R=? [ I=10 ]").value);
  EXPECT_EQ(results[2].value, refChecker.check("R=? [ S ]").value);
}

TEST(Orientation, OriginalOnlySupportsBoundedBitIdentically) {
  const auto model = labeledChain();
  const auto both = dtmc::buildExplicit(model);
  dtmc::BuildOptions options;
  options.orientation = la::KeepOrientation::kOriginalOnly;
  const auto forwardOnly = dtmc::buildExplicit(model, options);

  const la::BitVector phi(3, true);
  la::BitVector psi(3);
  psi.set(2);
  EXPECT_TRUE(bitEqual(mc::boundedUntil(forwardOnly.dtmc, phi, psi, 8),
                       mc::boundedUntil(both.dtmc, phi, psi, 8)));
  EXPECT_TRUE(bitEqual(mc::nextProb(forwardOnly.dtmc, psi),
                       mc::nextProb(both.dtmc, psi)));
}

TEST(Orientation, EngineCacheKeysOnOrientation) {
  const auto model = labeledChain();
  engine::AnalysisEngine eng;

  dtmc::BuildOptions both;  // kBoth
  dtmc::BuildOptions transposeOnly;
  transposeOnly.orientation = la::KeepOrientation::kTransposeOnly;

  bool hit = false;
  const auto a = eng.ensureBuilt(model, both, std::nullopt, &hit);
  EXPECT_FALSE(hit);
  // Same model, different orientation: must be a distinct cache entry, not
  // a hit that would hand back a matrix with the wrong residency.
  const auto b = eng.ensureBuilt(model, transposeOnly, std::nullopt, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(a.get(), b.get());
  EXPECT_TRUE(a->dtmc.matrix().hasOriginal());
  EXPECT_FALSE(b->dtmc.matrix().hasOriginal());
  EXPECT_EQ(eng.stats().builds, 2u);

  // Repeating each orientation is a hit on its own entry.
  (void)eng.ensureBuilt(model, both, std::nullopt, &hit);
  EXPECT_TRUE(hit);
  (void)eng.ensureBuilt(model, transposeOnly, std::nullopt, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(eng.stats().builds, 2u);
  EXPECT_EQ(eng.stats().cachedModels, 2u);
}

TEST(Orientation, EngineRebuildsTransposeOnlyOnDemand) {
  const auto model = labeledChain();
  engine::AnalysisEngine eng;

  // Prime the cache with a transpose-only build via a request that never
  // needs forward access — no rebuild happens.
  engine::AnalysisRequest steady;
  steady.model = &model;
  steady.properties = {"R=? [ S ]"};
  steady.options.backend = engine::Backend::kExact;
  steady.options.build.orientation = la::KeepOrientation::kTransposeOnly;
  const auto first = eng.analyze(steady);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.orientationRebuilt);
  EXPECT_EQ(eng.stats().builds, 1u);

  // A bounded property hitting the cached transpose-only entry upgrades it
  // in place instead of refusing.
  engine::AnalysisRequest bounded;
  bounded.model = &model;
  bounded.properties = {"P=? [ F<=5 \"goal\" ]", "R=? [ S ]"};
  bounded.options = steady.options;
  const auto second = eng.analyze(bounded);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cacheHit);
  EXPECT_TRUE(second.orientationRebuilt);
  EXPECT_GT(second.buildSeconds, 0.0);
  EXPECT_EQ(eng.stats().builds, 2u);       // the upgrade is a real build...
  EXPECT_EQ(eng.stats().cachedModels, 1u);  // ...under the SAME cache key

  // Values bit-equal to a kBoth build.
  const auto reference = dtmc::buildExplicit(model);
  const mc::Checker refChecker(reference.dtmc, model);
  ASSERT_TRUE(second.results[0].ok()) << second.results[0].error;
  EXPECT_EQ(second.results[0].value,
            refChecker.check("P=? [ F<=5 \"goal\" ]").value);
  EXPECT_EQ(second.results[1].value, refChecker.check("R=? [ S ]").value);

  // The upgraded entry now serves forward traversals directly.
  const auto third = eng.analyze(bounded);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third.cacheHit);
  EXPECT_FALSE(third.orientationRebuilt);
  EXPECT_EQ(eng.stats().builds, 2u);
}

TEST(Orientation, EngineKeepsRefusalWhenRebuildDisabled) {
  const auto model = labeledChain();
  engine::AnalysisEngine eng;

  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F<=5 \"goal\" ]", "R=? [ S ]"};
  request.options.backend = engine::Backend::kExact;
  request.options.build.orientation = la::KeepOrientation::kTransposeOnly;
  request.options.rebuildOrientation = false;
  const auto response = eng.analyze(request);
  EXPECT_FALSE(response.orientationRebuilt);
  ASSERT_EQ(response.results.size(), 2u);
  // The refusal surfaces per property; the steady sibling still answers.
  EXPECT_FALSE(response.results[0].ok());
  EXPECT_NE(response.results[0].error.find("orientation"), std::string::npos)
      << response.results[0].error;
  EXPECT_TRUE(response.results[1].ok()) << response.results[1].error;
}

}  // namespace
}  // namespace mimostat
