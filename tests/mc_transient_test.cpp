#include <gtest/gtest.h>

#include <cmath>

#include "dtmc/builder.hpp"
#include "mc/transient.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

// Closed form for the two-state chain with P(0->1)=a, P(1->0)=b starting in
// state 0: pi_t(1) = a/(a+b) * (1 - (1-a-b)^t).
double twoStateP1(double a, double b, std::uint64_t t) {
  return a / (a + b) * (1.0 - std::pow(1.0 - a - b, static_cast<double>(t)));
}

TEST(Transient, TwoStateClosedForm) {
  const double a = 0.3;
  const double b = 0.4;
  const auto model = test::twoStateChain(a, b);
  const auto d = dtmc::buildExplicit(model).dtmc;
  for (const std::uint64_t t : {0ULL, 1ULL, 2ULL, 5ULL, 20ULL, 100ULL}) {
    const auto pi = mc::transientDistribution(d, t);
    EXPECT_NEAR(pi[1], twoStateP1(a, b, t), 1e-12) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
  }
}

TEST(Transient, DistributionStaysNormalized) {
  const auto model = test::randomModel(30, 4, 99);
  const auto d = dtmc::buildExplicit(model).dtmc;
  auto pi = mc::transientDistribution(d, 50);
  double total = 0.0;
  for (const double p : pi) total += p;
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(Transient, InstantaneousRewardMatchesDistribution) {
  const auto model = test::twoStateChain(0.2, 0.1);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const std::vector<double> reward{0.0, 1.0};  // indicator of state 1
  for (const std::uint64_t t : {1ULL, 3ULL, 10ULL}) {
    EXPECT_NEAR(mc::instantaneousReward(d, reward, t),
                twoStateP1(0.2, 0.1, t), 1e-12);
  }
}

TEST(Transient, CumulativeIsSumOfInstantaneous) {
  const auto model = test::randomModel(15, 3, 5);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto reward = d.evalReward(model, "");
  const std::uint64_t horizon = 12;
  double manual = 0.0;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    manual += mc::instantaneousReward(d, reward, t);
  }
  EXPECT_NEAR(mc::cumulativeReward(d, reward, horizon), manual, 1e-10);
}

TEST(Transient, SeriesMatchesPointQueries) {
  const auto model = test::twoStateChain(0.25, 0.15);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const std::vector<double> reward{0.0, 1.0};
  const auto series = mc::instantaneousRewardSeries(d, reward, 20);
  ASSERT_EQ(series.size(), 21u);
  for (std::uint64_t t = 0; t <= 20; ++t) {
    EXPECT_NEAR(series[t], mc::instantaneousReward(d, reward, t), 1e-12);
  }
}

TEST(Transient, SteadyDetectionConvergesToStationaryReward) {
  const double a = 0.3;
  const double b = 0.4;
  const auto model = test::twoStateChain(a, b);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const std::vector<double> reward{0.0, 1.0};
  const auto det = mc::detectRewardSteadyState(d, reward, 1e-12, 8, 10000);
  EXPECT_TRUE(det.converged);
  EXPECT_NEAR(det.value, a / (a + b), 1e-9);
}

TEST(Transient, SteadyDetectionFailsOnPeriodicChain) {
  const auto model = test::cycleModel(3);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const std::vector<double> reward{1.0, 0.0, 0.0};
  const auto det = mc::detectRewardSteadyState(d, reward, 1e-9, 8, 200);
  EXPECT_FALSE(det.converged);  // reward oscillates 1,0,0,1,0,0,...
}

TEST(Transient, ZeroStepsReturnsInitialDistribution) {
  const auto model = test::gamblersRuin(4, 0.5, 2);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto pi = mc::transientDistribution(d, 0);
  EXPECT_NEAR(pi[0], 1.0, 1e-15);  // BFS index 0 = initial state
}

}  // namespace
}  // namespace mimostat
