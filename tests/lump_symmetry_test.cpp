#include <gtest/gtest.h>

#include "dtmc/builder.hpp"
#include "lump/symmetry.hpp"
#include "mc/transient.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

lump::BlockStructure singletonBlocks(int k) {
  lump::BlockStructure blocks;
  for (int i = 0; i < k; ++i) blocks.push_back({static_cast<std::size_t>(i)});
  return blocks;
}

TEST(Symmetry, CanonicalizeSortsBlocks) {
  const test::SymmetricBanksModel model(3, 0.2, 0.3);
  const lump::SymmetryReducedModel reduced(model, singletonBlocks(3));
  EXPECT_EQ(reduced.canonicalize({1, 0, 1}), (dtmc::State{0, 1, 1}));
  EXPECT_EQ(reduced.canonicalize({0, 0, 0}), (dtmc::State{0, 0, 0}));
}

TEST(Symmetry, CanonicalizeIsIdempotentAndOrbitInvariant) {
  const test::SymmetricBanksModel model(4, 0.2, 0.3);
  const lump::SymmetryReducedModel reduced(model, singletonBlocks(4));
  const dtmc::State s{1, 0, 1, 0};
  const auto c = reduced.canonicalize(s);
  EXPECT_EQ(reduced.canonicalize(c), c);
  // Every permutation of s maps to the same canonical state.
  EXPECT_EQ(reduced.canonicalize({0, 1, 0, 1}), c);
  EXPECT_EQ(reduced.canonicalize({1, 1, 0, 0}), c);
}

TEST(Symmetry, ReducedStateSpaceIsOrbitCount) {
  const int k = 5;
  const test::SymmetricBanksModel model(k, 0.2, 0.3);
  const auto full = dtmc::buildExplicit(model);
  EXPECT_EQ(full.dtmc.numStates(), 1u << k);

  const lump::SymmetryReducedModel reducedModel(model, singletonBlocks(k));
  const auto reduced = dtmc::buildExplicit(reducedModel);
  EXPECT_EQ(reduced.dtmc.numStates(), static_cast<std::uint32_t>(k + 1));
  EXPECT_LT(reduced.dtmc.maxRowDeviation(), 1e-12);
}

TEST(Symmetry, QuotientPreservesSymmetricRewards) {
  const int k = 4;
  const test::SymmetricBanksModel model(k, 0.15, 0.25);
  const auto full = dtmc::buildExplicit(model);
  const lump::SymmetryReducedModel reducedModel(model, singletonBlocks(k));
  const auto reduced = dtmc::buildExplicit(reducedModel);

  const auto fullReward = full.dtmc.evalReward(model, "");
  const auto reducedReward = reduced.dtmc.evalReward(reducedModel, "");
  for (const std::uint64_t t : {1ULL, 3ULL, 10ULL, 40ULL}) {
    EXPECT_NEAR(mc::instantaneousReward(full.dtmc, fullReward, t),
                mc::instantaneousReward(reduced.dtmc, reducedReward, t),
                1e-11)
        << "t=" << t;
  }
}

TEST(Symmetry, VerifySymmetryAcceptsSymmetricModel) {
  const test::SymmetricBanksModel model(4, 0.3, 0.2);
  const lump::SymmetryReducedModel reduced(model, singletonBlocks(4));
  EXPECT_TRUE(reduced.verifySymmetry({"any"}, 200, 7));
}

/// A deliberately asymmetric variant: component 0 uses different flip
/// probabilities, so treating the components as symmetric is unsound.
class AsymmetricBanksModel : public test::SymmetricBanksModel {
 public:
  AsymmetricBanksModel() : SymmetricBanksModel(3, 0.3, 0.2) {}
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override {
    SymmetricBanksModel::transitions(s, out);
    // Skew: make the all-flip branch depend on component 0 asymmetrically.
    for (auto& t : out) {
      if (s[0] == 1 && t.target[0] == 0) {
        t.prob *= 0.5;
      }
    }
    // Renormalize so rows still sum to 1 (keeps the model well-formed but
    // breaks exchangeability).
    double total = 0.0;
    for (const auto& t : out) total += t.prob;
    for (auto& t : out) t.prob /= total;
  }
};

TEST(Symmetry, VerifySymmetryRejectsAsymmetricModel) {
  const AsymmetricBanksModel model;
  const lump::SymmetryReducedModel reduced(model, singletonBlocks(3));
  EXPECT_FALSE(reduced.verifySymmetry({"any"}, 500, 11));
}

TEST(Symmetry, MultiVariableBlocks) {
  // Blocks of arity 2 (pairs of variables) must sort as tuples. Build a
  // 2-block model by pairing the banks: {c0,c1} and {c2,c3}.
  const test::SymmetricBanksModel model(4, 0.2, 0.2);
  lump::BlockStructure pairBlocks{{0, 1}, {2, 3}};
  const lump::SymmetryReducedModel reduced(model, pairBlocks);
  EXPECT_EQ(reduced.canonicalize({1, 0, 0, 1}), (dtmc::State{0, 1, 1, 0}));
  const auto built = dtmc::buildExplicit(reduced);
  const auto full = dtmc::buildExplicit(model);
  EXPECT_LT(built.dtmc.numStates(), full.dtmc.numStates());
}

}  // namespace
}  // namespace mimostat
