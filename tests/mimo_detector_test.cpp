#include <gtest/gtest.h>

#include <cmath>

#include "comm/channel.hpp"
#include "mimo/detector.hpp"
#include "mimo/sim.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

TEST(Detector, ParamsHelpers) {
  const auto p2 = mimo::mimo1x2Params();
  EXPECT_EQ(p2.nr, 2);
  EXPECT_EQ(p2.numBlocks(), 4);
  const auto p4 = mimo::mimo1x4Params();
  EXPECT_EQ(p4.nr, 4);
  EXPECT_EQ(p4.numBlocks(), 8);
  EXPECT_GT(p4.snrDb, p2.snrDb);
}

TEST(Detector, AnalogMatchesBruteForce) {
  const mimo::MlDetector detector(mimo::mimo1x2Params());
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<double> y(4);
    std::vector<double> h(4);
    for (int b = 0; b < 4; ++b) {
      y[b] = 2.0 * rng.nextDouble() - 1.0;
      h[b] = 2.0 * rng.nextDouble() - 1.0;
    }
    double m0 = 0.0;
    double m1 = 0.0;
    for (int b = 0; b < 4; ++b) {
      m0 += std::fabs(y[b] + h[b]);
      m1 += std::fabs(y[b] - h[b]);
    }
    EXPECT_EQ(detector.detectAnalog(y, h), m0 <= m1 ? 0 : 1);
  }
}

TEST(Detector, PerfectObservationDecodesCorrectly) {
  const mimo::MlDetector detector(mimo::mimo1x2Params());
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 500; ++trial) {
    const int x = rng.nextBit() ? 1 : 0;
    std::vector<double> h(4);
    std::vector<double> y(4);
    bool informative = false;
    for (int b = 0; b < 4; ++b) {
      h[b] = rng.nextGaussian();
      if (std::fabs(h[b]) > 0.3) informative = true;
      y[b] = h[b] * comm::bpsk(x);  // noiseless
    }
    if (!informative) continue;
    EXPECT_EQ(detector.detectAnalog(y, h), x);
  }
}

TEST(Detector, TieBreaksToZero) {
  const mimo::MlDetector detector(mimo::mimo1x2Params());
  const std::vector<double> y(4, 0.0);
  const std::vector<double> h(4, 0.0);
  EXPECT_EQ(detector.detectAnalog(y, h), 0);
  const std::vector<int> yCells(4, 0);
  const std::vector<int> hCells = {1, 1, 1, 1};  // middle cell, value 0
  EXPECT_EQ(detector.detectQuantized(yCells, hCells), 0);
}

TEST(Detector, QuantizedAgreesWithAnalogOnReconstructionValues) {
  const mimo::MlDetector detector(mimo::mimo1x2Params());
  util::Xoshiro256 rng(13);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<int> yCells(4);
    std::vector<int> hCells(4);
    std::vector<double> y(4);
    std::vector<double> h(4);
    for (int b = 0; b < 4; ++b) {
      yCells[b] = static_cast<int>(rng.nextBounded(6));
      hCells[b] = static_cast<int>(rng.nextBounded(3));
      y[b] = detector.yQuantizer().value(yCells[b]);
      h[b] = detector.hQuantizer().value(hCells[b]);
    }
    EXPECT_EQ(detector.detectQuantized(yCells, hCells),
              detector.detectAnalog(y, h));
  }
}

TEST(DetectorSim, AnalogBeatsQuantized) {
  // Quantization costs performance: the analog detector's BER must be no
  // worse than the coarsely quantized one.
  const auto params = mimo::mimo1x2Params();
  const auto analog = mimo::simulateAnalog(params, 200000, 3);
  const auto quantized = mimo::simulateQuantized(params, 200000, 3);
  EXPECT_LE(analog.bitErrors.estimate(),
            quantized.bitErrors.estimate() + 0.01);
}

TEST(DetectorSim, MoreAntennasFewerErrors) {
  // Receive diversity: the 1x4 detector at its (higher) SNR has a BER
  // orders of magnitude below the 1x2 detector — Table V's shape.
  const auto ber1x2 =
      mimo::simulateQuantized(mimo::mimo1x2Params(), 200000, 17);
  const auto ber1x4 =
      mimo::simulateQuantized(mimo::mimo1x4Params(), 200000, 17);
  EXPECT_LT(ber1x4.bitErrors.estimate(),
            0.5 * ber1x2.bitErrors.estimate() + 1e-6);
}

TEST(Detector2x2, ParamsAndShapes) {
  const auto p = mimo::mimo2x2Params();
  EXPECT_EQ(p.nt, 2);
  EXPECT_EQ(p.numBlocks(), 4);        // 2*Nr real dimensions
  EXPECT_EQ(p.numChannelParts(), 8);  // nt coefficients per block
  EXPECT_EQ(p.numHypotheses(), 4);    // BPSK vectors (s1, s2)
}

TEST(Detector2x2, AnalogMatchesBruteForce) {
  // Paper Eq. 14/15: argmin over the four (s1, s2) hypotheses of the sum
  // of per-dimension L1 residuals.
  const mimo::MlDetector detector(mimo::mimo2x2Params());
  util::Xoshiro256 rng(19);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<double> y(4);
    std::vector<double> h(8);
    for (auto& v : y) v = 2.0 * rng.nextDouble() - 1.0;
    for (auto& v : h) v = 2.0 * rng.nextDouble() - 1.0;
    int best = 0;
    double bestMetric = 1e300;
    for (int s = 0; s < 4; ++s) {
      double metric = 0.0;
      for (int b = 0; b < 4; ++b) {
        metric += std::fabs(y[b] - h[2 * b] * comm::bpsk(s & 1) -
                            h[2 * b + 1] * comm::bpsk((s >> 1) & 1));
      }
      if (metric < bestMetric) {
        bestMetric = metric;
        best = s;
      }
    }
    EXPECT_EQ(detector.detectAnalog(y, h), best) << trial;
  }
}

TEST(Detector2x2, NoiselessDecodesBothStreams) {
  const mimo::MlDetector detector(mimo::mimo2x2Params());
  util::Xoshiro256 rng(23);
  int checked = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const int x = static_cast<int>(rng.nextBounded(4));
    std::vector<double> h(8);
    for (auto& v : h) v = rng.nextGaussian();
    std::vector<double> y(4);
    bool wellConditioned = true;
    for (int b = 0; b < 4; ++b) {
      y[b] = h[2 * b] * comm::bpsk(x & 1) + h[2 * b + 1] * comm::bpsk(x >> 1);
    }
    // Skip near-singular channels where hypotheses are almost ambiguous.
    for (int s = 0; s < 4; ++s) {
      if (s == x) continue;
      double metric = 0.0;
      for (int b = 0; b < 4; ++b) {
        metric += std::fabs(y[b] - h[2 * b] * comm::bpsk(s & 1) -
                            h[2 * b + 1] * comm::bpsk((s >> 1) & 1));
      }
      if (metric < 0.3) wellConditioned = false;
    }
    if (!wellConditioned) continue;
    ++checked;
    EXPECT_EQ(detector.detectAnalog(y, h), x) << trial;
  }
  EXPECT_GT(checked, 100);
}

TEST(Detector2x2, QuantizedSimBerIsReasonable) {
  // The 2x2 quantized datapath at 10 dB: BER well below coin flip, above
  // the 1-stream 1x2 detector at comparable SNR (spatial interference).
  const auto ber2x2 = mimo::simulateQuantized(mimo::mimo2x2Params(), 200000, 31);
  EXPECT_LT(ber2x2.bitErrors.estimate(), 0.3);
  EXPECT_GT(ber2x2.bitErrors.estimate(), 1e-4);
  EXPECT_EQ(ber2x2.bitErrors.trials(), 400000u);  // two bits per trial
}

TEST(Detector2x2, QuantizedPermutationInvariant) {
  // Swapping two metric blocks (y_b together with its nt coefficients)
  // must never change the quantized decision.
  const mimo::MlDetector detector(mimo::mimo2x2Params());
  util::Xoshiro256 rng(37);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<int> yCells(4);
    std::vector<int> hCells(8);
    for (auto& c : yCells) c = static_cast<int>(rng.nextBounded(6));
    for (auto& c : hCells) c = static_cast<int>(rng.nextBounded(3));
    const int base = detector.detectQuantized(yCells, hCells);
    const auto b1 = rng.nextBounded(4);
    const auto b2 = rng.nextBounded(4);
    std::swap(yCells[b1], yCells[b2]);
    std::swap(hCells[2 * b1], hCells[2 * b2]);
    std::swap(hCells[2 * b1 + 1], hCells[2 * b2 + 1]);
    EXPECT_EQ(detector.detectQuantized(yCells, hCells), base) << trial;
  }
}

TEST(DetectorSim, DeterministicPerSeed) {
  const auto a = mimo::simulateQuantized(mimo::mimo1x2Params(), 20000, 21);
  const auto b = mimo::simulateQuantized(mimo::mimo1x2Params(), 20000, 21);
  EXPECT_EQ(a.bitErrors.successes(), b.bitErrors.successes());
}

}  // namespace
}  // namespace mimostat
