#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "core/metrics.hpp"
#include "core/reduction.hpp"
#include "core/report.hpp"
#include "test_models.hpp"
#include "util/rng.hpp"
#include "viterbi/decoder.hpp"
#include "viterbi/model_reduced.hpp"
#include "viterbi/sim.hpp"

namespace mimostat {
namespace {

TEST(Metrics, PropertyStrings) {
  EXPECT_EQ(core::metricProperty(core::MetricKind::kBestCase, 300),
            "P=? [ G<=300 !flag ]");
  EXPECT_EQ(core::metricProperty(core::MetricKind::kAverageCase, 300),
            "R=? [ I=300 ]");
  EXPECT_EQ(core::metricProperty(core::MetricKind::kWorstCase, 300, 1),
            "P=? [ F<=300 errs>1 ]");
  EXPECT_EQ(core::metricProperty(core::MetricKind::kConvergence, 100),
            "R=? [ I=100 ]");
}

TEST(Metrics, Names) {
  EXPECT_STREQ(core::metricName(core::MetricKind::kBestCase),
               "P1 (best case)");
  EXPECT_STREQ(core::metricName(core::MetricKind::kWorstCase),
               "P3 (worst case)");
}

TEST(Analyzer, ChecksPropertiesOnSmallViterbi) {
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  const viterbi::ReducedViterbiModel model(params);
  const core::PerformanceAnalyzer analyzer(model);

  const auto p1 = analyzer.check("P=? [ G<=50 !flag ]");
  const auto p2 = analyzer.check("R=? [ I=50 ]");
  EXPECT_GT(p2.value, 0.0);
  EXPECT_LT(p2.value, 1.0);
  EXPECT_GE(p1.value, 0.0);
  EXPECT_EQ(p1.states, analyzer.dtmc().numStates());
  EXPECT_GT(p1.states, 0u);
  EXPECT_GT(p1.transitions, 0u);
  EXPECT_GT(analyzer.reachabilityIterations(), 0u);
}

TEST(Analyzer, SweepInstantaneous) {
  // Reward = indicator of state 1 (set via MatrixModel).
  auto labelled = test::twoStateChain(0.3, 0.4);
  labelled.withRewards({0.0, 1.0});
  const core::PerformanceAnalyzer analyzer(labelled);
  const auto reports = analyzer.sweepInstantaneous({1, 5, 50});
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_LT(reports[0].value, reports[2].value);  // approaching steady state
  EXPECT_NEAR(reports[2].value, 0.3 / 0.7, 1e-6);
}

TEST(Analyzer, DetectSteadyState) {
  auto model = test::twoStateChain(0.25, 0.4);
  model.withRewards({0.0, 1.0});
  const core::PerformanceAnalyzer analyzer(model);
  const auto detection = analyzer.detectSteadyState(1e-12, 8, 10000);
  EXPECT_TRUE(detection.converged);
  EXPECT_NEAR(detection.value, 0.25 / 0.65, 1e-9);
}

TEST(Analyzer, CrossCheckAgainstSimulation) {
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  const viterbi::ReducedViterbiModel model(params);
  const core::PerformanceAnalyzer analyzer(model);

  // Error source: a live bit-accurate decode stream, one step per call.
  const viterbi::TrellisKernel kernel(params);
  auto decoder = std::make_shared<viterbi::Decoder>(kernel);
  auto history = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(params.tracebackLength), 0);
  auto prevBit = std::make_shared<int>(0);
  auto rngPtr = std::make_shared<util::Xoshiro256>(314);
  const sim::ErrorSource source = [=, &kernel](std::uint64_t) {
    const int bit = rngPtr->nextBit() ? 1 : 0;
    const int q = kernel.channel().sample(bit, *prevBit, *rngPtr);
    const int decoded = decoder->step(q);
    history->insert(history->begin(), bit);
    const int actual = (*history)[static_cast<std::size_t>(
        params.tracebackLength - 1)];
    history->pop_back();
    *prevBit = bit;
    return decoded != actual;
  };
  // The per-cycle error process is Markov-correlated, so the iid Wilson
  // interval in CrossCheck::interval95 is (correctly) too narrow for a
  // strict containment assertion. Check agreement two ways: a coarse
  // absolute tolerance on the CrossCheck result, and honest containment in
  // a batch-means interval built from the same stream.
  const auto crossCheck =
      analyzer.crossCheck("R=? [ I=2000 ]", source, 200000);
  EXPECT_NEAR(crossCheck.modelChecked, crossCheck.simulation.estimate(), 0.01);

  stats::BatchMeansEstimator batches(2000);
  auto rng2 = std::make_shared<util::Xoshiro256>(2718);
  auto decoder2 = std::make_shared<viterbi::Decoder>(kernel);
  auto history2 = std::make_shared<std::vector<int>>(
      static_cast<std::size_t>(params.tracebackLength), 0);
  int prev2 = 0;
  for (int t = 0; t < 400000; ++t) {
    const int bit = rng2->nextBit() ? 1 : 0;
    const int q = kernel.channel().sample(bit, prev2, *rng2);
    const int decoded = decoder2->step(q);
    history2->insert(history2->begin(), bit);
    const int actual =
        (*history2)[static_cast<std::size_t>(params.tracebackLength - 1)];
    history2->pop_back();
    prev2 = bit;
    batches.add(decoded != actual ? 1.0 : 0.0);
  }
  const auto interval = batches.interval(0.99);
  EXPECT_TRUE(interval.contains(crossCheck.modelChecked))
      << "model " << crossCheck.modelChecked << " batch-means ["
      << interval.low << ", " << interval.high << "]";
}

TEST(Report, FormatsTable) {
  core::GuaranteeReport row;
  row.property = "P=? [ G<=300 !flag ]";
  row.value = 3e-15;
  row.states = 8505363;
  row.transitions = 123456;
  row.buildSeconds = 1.5;
  row.checkSeconds = 0.5;
  const auto table = core::formatReportTable("Table I", {row});
  EXPECT_NE(table.find("Table I"), std::string::npos);
  EXPECT_NE(table.find("8505363"), std::string::npos);
  EXPECT_NE(table.find("3.000e-15"), std::string::npos);
  EXPECT_NE(table.find("2.00"), std::string::npos);  // total time
}

TEST(Report, FormatValueSwitchesNotation) {
  EXPECT_EQ(core::formatValue(0.25), "0.250000");
  EXPECT_EQ(core::formatValue(1.08e-5), "1.080e-05");
  EXPECT_EQ(core::formatValue(0.0), "0.000000");
}

TEST(Reduction, VerdictDetectsBrokenReduction) {
  // Comparing two unrelated models must fail the property check.
  const auto a = test::twoStateChain(0.3, 0.4);
  auto aReward = test::twoStateChain(0.3, 0.4);
  aReward.withRewards({0.0, 1.0});
  auto b = test::twoStateChain(0.45, 0.1);
  b.withRewards({0.0, 1.0});
  const auto verdict =
      core::verifyReduction(aReward, b, {"R=? [ I=10 ]"}, nullptr, 1e-9);
  EXPECT_FALSE(verdict.propertiesPreserved);
  EXPECT_FALSE(verdict.sound());
}

}  // namespace
}  // namespace mimostat
