// Cross-module integration scenarios: each test drives several subsystems
// end to end the way a downstream user would.
#include <gtest/gtest.h>

#include <sstream>

#include "bdd/reachability.hpp"
#include "core/analyzer.hpp"
#include "dtmc/builder.hpp"
#include "dtmc/compose.hpp"
#include "dtmc/io.hpp"
#include "lump/bisim.hpp"
#include "lump/symmetry.hpp"
#include "lump/verify.hpp"
#include "mc/checker.hpp"
#include "mimo/model.hpp"
#include "pml/model.hpp"
#include "smc/smc.hpp"
#include "viterbi/model_reduced.hpp"

namespace mimostat {
namespace {

TEST(Integration, PmlModelThroughLumping) {
  // A PML model with two symmetric branches lumps; the quotient preserves
  // the reward transient.
  const pml::PmlModel model(R"(
dtmc
module twin
  s : [0..3] init 0;
  [] s=0 -> 0.5 : (s'=1) + 0.5 : (s'=2);
  [] s=1 -> (s'=3);
  [] s=2 -> (s'=3);
  [] s=3 -> (s'=0);
endmodule
rewards
  s=3 : 1;
endrewards
)");
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto reward = d.evalReward(model, "");
  const auto lumped =
      lump::lump(d, lump::keysFromRewardAndLabels(reward, {}));
  EXPECT_LT(lumped.partition.numBlocks, d.numStates());  // 1 and 2 merge
  EXPECT_TRUE(lump::verifyLumpable(d, lumped.partition).lumpable);
}

TEST(Integration, PmlModelsCompose) {
  const pml::PmlModel lane(R"(
dtmc
const double p = 0.3;
module lane
  busy : [0..1] init 0;
  [] busy=0 -> p : (busy'=1) + 1-p : (busy'=0);
  [] busy=1 -> (busy'=0);
endmodule
rewards
  busy=1 : 1;
endrewards
)");
  const dtmc::SynchronousProduct pair({&lane, &lane});
  const core::PerformanceAnalyzer single(lane);
  const core::PerformanceAnalyzer both(pair);
  // Expected busy lanes = 2x the single-lane expectation.
  EXPECT_NEAR(both.check("R=? [ I=13 ]").value,
              2.0 * single.check("R=? [ I=13 ]").value, 1e-12);
  // Qualified variables address individual lanes.
  const double lane0 = both.check("P=? [ F<=3 m0_busy=1 ]").value;
  const double lane1 = both.check("P=? [ F<=3 m1_busy=1 ]").value;
  EXPECT_NEAR(lane0, lane1, 1e-12);
}

TEST(Integration, SmcOnPmlModel) {
  const pml::PmlModel model(R"(
dtmc
module coin
  heads : [0..1] init 0;
  [] true -> 0.5 : (heads'=1) + 0.5 : (heads'=0);
endmodule
label "heads" = heads=1;
)");
  smc::SmcOptions options;
  options.paths = 20000;
  options.seed = 4;
  const auto estimate =
      smc::estimateProperty(model, "P=? [ X \"heads\" ]", options);
  EXPECT_TRUE(estimate.satisfied.wilson(0.999).contains(0.5));
}

TEST(Integration, SymbolicReachabilityOfViterbiModel) {
  // Symbolic (BDD) and explicit reachability agree on a real case-study
  // model, not just on toy matrices.
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  params.pmCap = 3;
  const viterbi::ReducedViterbiModel model(params);
  const auto layoutBits =
      static_cast<std::uint32_t>(model.layout().totalBits());
  bdd::SymbolicSpace space(layoutBits);
  const auto symbolic = bdd::buildSymbolic(model, space, 1 << 20);
  const auto explicitBuild = dtmc::buildExplicit(model);
  EXPECT_EQ(symbolic.stateCount,
            static_cast<double>(explicitBuild.dtmc.numStates()));
  EXPECT_EQ(symbolic.iterations, explicitBuild.reachabilityIterations);
}

TEST(Integration, ExportImportPreservesMimoBer) {
  mimo::MimoParams params;
  params.nr = 1;
  params.hLevels = 2;
  params.yLevels = 3;
  const mimo::MimoDetectorModel model(params);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker original(d, model);
  const double ber = original.check("R=? [ I=7 ]").value;

  std::stringstream tra;
  std::stringstream srew;
  dtmc::writeTra(d, tra);
  dtmc::writeSrew(d, model, "", srew);
  dtmc::ImportedExplicit imported;
  imported.dtmc = dtmc::readTra(tra, nullptr, 0);
  imported.rewards.emplace_back("", dtmc::readSrew(srew, d.numStates()));
  const dtmc::ImportedModel importedModel(std::move(imported));
  const auto rebuilt = dtmc::buildExplicit(importedModel).dtmc;
  const mc::Checker viaFiles(rebuilt, importedModel);
  EXPECT_NEAR(viaFiles.check("R=? [ I=7 ]").value, ber, 1e-12);
}

TEST(Integration, AnalyzerOnSymmetryReducedComposition) {
  // Compose two identical PML lanes, canonicalise under lane swap, and
  // check through the analyzer — four subsystems in one pipeline.
  const pml::PmlModel lane(R"(
dtmc
module lane
  v : [0..2] init 0;
  [] v<2 -> 0.4 : (v'=v+1) + 0.6 : (v'=0);
  [] v=2 -> (v'=0);
endmodule
rewards
  v=2 : 1;
endrewards
)");
  const dtmc::SynchronousProduct product({&lane, &lane});
  const lump::BlockStructure blocks{{0}, {1}};
  const lump::SymmetryReducedModel reduced(product, blocks);

  const core::PerformanceAnalyzer fullAnalyzer(product);
  const core::PerformanceAnalyzer reducedAnalyzer(reduced);
  EXPECT_LT(reducedAnalyzer.dtmc().numStates(),
            fullAnalyzer.dtmc().numStates());
  EXPECT_NEAR(fullAnalyzer.check("R=? [ I=21 ]").value,
              reducedAnalyzer.check("R=? [ I=21 ]").value, 1e-12);
}

TEST(Integration, SteadyStateAgreesAcrossEngines) {
  // R=?[S], the T->inf limit of R=?[I=T], and the SMC estimate at large T
  // must all coincide on an aperiodic PML chain.
  const pml::PmlModel model(R"(
dtmc
module drift
  level : [0..4] init 0;
  [] level<4 -> 0.3 : (level'=level+1) + 0.7 : (level'=max(level-1, 0));
  [] level=4 -> 0.7 : (level'=3) + 0.3 : (level'=4);
endmodule
rewards
  true : level;
endrewards
)");
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double steady = checker.check("R=? [ S ]").value;
  const double longT = checker.check("R=? [ I=2000 ]").value;
  EXPECT_NEAR(steady, longT, 1e-8);

  smc::SmcOptions options;
  options.paths = 20000;
  options.seed = 6;
  const auto sampled =
      smc::estimateInstantaneousReward(model, 200, "", options);
  EXPECT_NEAR(sampled.mean(), steady,
              4.0 * sampled.standardError() + 1e-3);
}

}  // namespace
}  // namespace mimostat
