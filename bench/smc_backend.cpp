// Sampling vs exact backend cost as the state space grows — the engine-level
// version of the paper's exact-vs-statistical complexity trade-off. The
// exact backend pays to build and sweep the full reachable state space; the
// sampling backend's cost is paths x horizon, independent of state count.
// Past the state-budget crossover, Backend::kAuto switches to sampling.
//
// Also exercises every sampled property form (P=?, P>=theta via SPRT,
// R=?[I=T], R=?[C<=T]) so the two backends can be compared on the same
// request.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "util/timer.hpp"

namespace {

using namespace mimostat;

/// Sparse lazy random walk on 0..n-1 (reflecting ends), declared directly as
/// a transition function so the state count scales without materializing a
/// matrix. Reward: indicator of the right half (mean -> 1/2 mixing proxy).
class WalkModel : public dtmc::Model {
 public:
  explicit WalkModel(std::int32_t n) : n_(n) {}

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override {
    return {{"s", 0, n_ - 1}};
  }
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override {
    return {{n_ / 2}};
  }
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override {
    const std::int32_t x = s[0];
    out.push_back({0.5, {x}});  // lazy
    if (x > 0) out.push_back({0.25, {x - 1}});
    if (x < n_ - 1) out.push_back({0.25, {x + 1}});
    if (x == 0) out.push_back({0.25, {0}});
    if (x == n_ - 1) out.push_back({0.25, {n_ - 1}});
  }
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view /*name*/) const override {
    return s[0] >= n_ / 2 ? 1.0 : 0.0;
  }

 private:
  std::int32_t n_;
};

}  // namespace

int main() {
  using namespace mimostat;

  std::printf("=== SMC backend vs exact backend (lazy walk, horizon 200) ===\n\n");
  engine::AnalysisEngine eng;

  const std::vector<std::string> properties = {
      "P=? [ F<=200 s=0 ]",
      "R=? [ I=200 ]",
      "R=? [ C<=200 ]",
  };

  std::printf("%-10s %-12s %-12s %-10s %-28s\n", "states", "exact(s)",
              "sampling(s)", "speedup", "max CI-normalized error");
  for (const std::int32_t n : {1 << 8, 1 << 11, 1 << 14, 1 << 17, 1 << 19}) {
    const WalkModel model(n);

    engine::AnalysisRequest exact;
    exact.model = &model;
    exact.properties = properties;
    exact.options.backend = engine::Backend::kExact;

    engine::AnalysisRequest sampled = exact;
    sampled.options.backend = engine::Backend::kSampling;
    sampled.options.smc.paths = 10'000;
    sampled.options.smc.seed = 17;

    util::Stopwatch exactTimer;
    const auto exactResponse = eng.analyze(exact);
    const double exactSeconds = exactTimer.elapsedSeconds();
    eng.clearModelCache();  // charge every round the full build cost

    util::Stopwatch sampleTimer;
    const auto sampledResponse = eng.analyze(sampled);
    const double sampleSeconds = sampleTimer.elapsedSeconds();

    // |exact - estimate| in units of the 95% CI half-width: ~1 means the
    // estimator is honest; >>1 would be a bug, not noise.
    double worst = 0.0;
    for (std::size_t p = 0; p < properties.size(); ++p) {
      const double diff = std::abs(exactResponse.results[p].value -
                                   sampledResponse.results[p].value);
      const auto& ci = sampledResponse.results[p].interval95;
      const double half = ci ? (ci->high - ci->low) / 2.0 : 1.0;
      worst = std::max(worst, diff / std::max(half, 1e-12));
    }
    std::printf("%-10d %-12.3f %-12.3f %-10.2f %-12.2e\n", n, exactSeconds,
                sampleSeconds, exactSeconds / sampleSeconds, worst);
  }

  std::printf("\nSPRT decisions with alpha=beta=0.01 (true P(F<=200 s=0) "
              "depends on n):\n");
  std::printf("%-10s %-26s %-10s %-12s %-8s\n", "states", "claim", "verdict",
              "paths used", "time(s)");
  for (const std::int32_t n : {1 << 8, 1 << 14}) {
    const WalkModel model(n);
    for (const char* claim :
         {"P>=0.05 [ F<=200 s=0 ]", "P<=0.9 [ F<=200 s=0 ]"}) {
      engine::AnalysisRequest request;
      request.model = &model;
      request.properties = {claim};
      request.options.backend = engine::Backend::kSampling;
      request.options.sprt.alpha = 0.01;
      request.options.sprt.beta = 0.01;
      const auto response = eng.analyze(request);
      const auto& result = response.results[0];
      std::printf("%-10d %-26s %-10s %-12llu %-8.3f\n", n, claim,
                  result.sprt && result.sprt->decided
                      ? (result.satisfied ? "holds" : "fails")
                      : "undecided",
                  static_cast<unsigned long long>(
                      result.sprt ? result.sprt->pathsUsed : 0),
                  result.checkSeconds);
    }
  }

  std::printf("\nBackend::kAuto picks exact below the state budget and "
              "sampling above it:\n");
  for (const std::int32_t n : {1 << 8, 1 << 19}) {
    const WalkModel model(n);
    engine::AnalysisRequest request;
    request.model = &model;
    request.properties = {"R=? [ C<=200 ]"};
    request.options.stateBudget = 1 << 16;
    const auto response = eng.analyze(request);
    std::printf("  n=%-8d backend=%s\n", n,
                engine::backendName(response.backend));
  }
  return 0;
}
