// Table V reproduction: BER for the MIMO ML detectors (paper, RI=3):
//   1x2 (SNR  8 dB): 0.277 / 0.291 / 0.296 for T=5/10/20
//   1x4 (SNR 12 dB): 1.08e-5 (constant in T)
// plus the paper's §V simulation comparison: 1e7 steps were needed to
// estimate the 1x4 BER (1.07e-5 observed), and 1e5 steps saw *zero* errors
// — simulation cannot resolve low BERs that the model checker computes
// exactly in seconds.
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "core/analyzer.hpp"
#include "lump/symmetry.hpp"
#include "mimo/model.hpp"
#include "mimo/sim.hpp"
#include "stats/intervals.hpp"

namespace {

double runDetector(const char* name, const mimostat::mimo::MimoParams& params) {
  using namespace mimostat;
  const mimo::MimoDetectorModel model(params);
  const lump::SymmetryReducedModel reduced(model, model.symmetryBlocks());
  const core::PerformanceAnalyzer analyzer(reduced);

  std::printf("%s: %u states (symmetry-reduced), RI=%u, built in %.2fs\n",
              name, analyzer.dtmc().numStates(),
              analyzer.reachabilityIterations(), analyzer.buildSeconds());
  const auto rows = analyzer.sweepInstantaneous({5, 10, 20});
  std::printf("  %-6s %-14s %-10s\n", "T", "BER (P2)", "time(s)");
  const std::uint64_t ts[3] = {5, 10, 20};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("  %-6llu %-14.6g %-10.3f\n",
                static_cast<unsigned long long>(ts[i]), rows[i].value,
                rows[i].checkSeconds);
  }
  return rows.back().value;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mimostat;

  // Full-fidelity mode (--full) runs the 1e7-step simulation of the paper;
  // the default keeps the bench suite fast with 1e6 steps.
  const bool full = argc > 1 && std::string_view(argv[1]) == "--full";
  const std::uint64_t longRun = full ? 10'000'000ULL : 1'000'000ULL;

  std::printf("=== Table V: BER for MIMO detectors ===\n");
  std::printf("(paper: 1x2 ~0.28-0.30; 1x4 1.08e-5; RI=3)\n\n");

  const double ber1x2 = runDetector("1x2", mimo::mimo1x2Params());
  const double ber1x4 = runDetector("1x4", mimo::mimo1x4Params());

  std::printf("\nShape check: BER(1x4) << BER(1x2): %s (%.3g vs %.3g)\n",
              ber1x4 < 0.01 * ber1x2 ? "yes" : "NO", ber1x4, ber1x2);

  // --- Simulation comparison (paper §V) ---
  std::printf("\n--- Monte-Carlo comparison (1x4 detector) ---\n");
  const auto params = mimo::mimo1x4Params();

  const auto shortRun = mimo::simulateQuantized(params, 100'000, 11);
  const auto shortInterval = shortRun.bitErrors.clopperPearson(0.95);
  std::printf("1e5 steps: %llu errors observed, BER in [%.2e, %.2e] "
              "(95%% CP) — %s\n",
              static_cast<unsigned long long>(shortRun.bitErrors.successes()),
              shortInterval.low, shortInterval.high,
              shortRun.bitErrors.successes() == 0
                  ? "zero errors, BER unresolved (paper's observation)"
                  : "few errors, wide interval");

  const auto longSim = mimo::simulateQuantized(params, longRun, 13);
  const auto longInterval = longSim.bitErrors.wilson(0.95);
  std::printf("%.0e steps: BER_sim = %.3e [%.3e, %.3e] in %.1fs; "
              "model-checked %.3e inside: %s\n",
              static_cast<double>(longRun), longSim.bitErrors.estimate(),
              longInterval.low, longInterval.high, longSim.seconds, ber1x4,
              longInterval.contains(ber1x4) ? "yes" : "NO");
  std::printf("Expected steps per observed error at this BER: %.1e\n",
              ber1x4 > 0 ? 1.0 / ber1x4 : 0.0);
  return 0;
}
