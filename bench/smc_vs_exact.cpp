// Statistical model checking vs exact probabilistic model checking on the
// Viterbi error model — the modern version of the paper's §V comparison
// (its ref. [13] is SMC): same model definition, two verification engines.
//
// Shapes: SMC estimates converge to the exact values like 1/sqrt(paths);
// the exact checker's cost is independent of the property's probability,
// while SPRT path counts explode as the threshold approaches the true
// probability.
#include <cstdio>

#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "smc/smc.hpp"
#include "util/timer.hpp"
#include "viterbi/model_reduced.hpp"

int main() {
  using namespace mimostat;

  std::printf("=== SMC vs exact model checking (Viterbi, L=4, SNR 5dB) ===\n\n");
  viterbi::ViterbiParams params;
  params.tracebackLength = 4;
  const viterbi::ReducedViterbiModel model(params);

  util::Stopwatch exactTimer;
  const auto build = dtmc::buildExplicit(model);
  const mc::Checker checker(build.dtmc, model);
  const char* property = "P=? [ G<=10 !flag ]";
  const double exact = checker.check(property).value;
  const double exactSeconds = exactTimer.elapsedSeconds();
  std::printf("exact:  %s = %.8f   (%u states, %.3fs total)\n\n", property,
              exact, build.dtmc.numStates(), exactSeconds);

  std::printf("%-10s %-12s %-12s %-22s %-8s\n", "paths", "estimate",
              "abs error", "99.9% Wilson interval", "time(s)");
  for (const std::uint64_t paths : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
    smc::SmcOptions options;
    options.paths = paths;
    options.seed = 17;
    const auto estimate = smc::estimateProperty(model, property, options);
    const auto interval = estimate.satisfied.wilson(0.999);
    std::printf("%-10llu %-12.6f %-12.2e [%.6f, %.6f]   %-8.3f %s\n",
                static_cast<unsigned long long>(paths), estimate.estimate(),
                std::abs(estimate.estimate() - exact), interval.low,
                interval.high, estimate.seconds,
                interval.contains(exact) ? "" : "(!)");
  }

  std::printf("\nSPRT hypothesis testing P>=theta [ G<=10 !flag ] "
              "(true p = %.4f):\n", exact);
  std::printf("%-10s %-12s %-10s\n", "theta", "paths used", "verdict");
  // Thresholds relative to the true probability, far to near.
  for (const double theta :
       {0.25 * exact, 0.5 * exact, 0.9 * exact, 0.98 * exact,
        std::min(0.98, 1.02 * exact)}) {
    smc::SprtOptions options;
    options.indifference = 0.01;
    options.seed = 23;
    char prop[96];
    std::snprintf(prop, sizeof(prop), "P>=%.4f [ G<=10 !flag ]", theta);
    const auto outcome = smc::testProperty(model, prop, options);
    std::printf("%-10.4f %-12llu %-10s\n", theta,
                static_cast<unsigned long long>(outcome.pathsUsed),
                outcome.decision == stats::SprtDecision::kContinue
                    ? "undecided"
                    : (outcome.holds ? "holds" : "fails"));
  }
  std::printf("\nNote the blow-up near theta = p: sequential testing pays "
              "for precision with samples;\nthe exact engine's one-time cost "
              "answers every threshold at once.\n");
  return 0;
}
