// RTL word-length design sweep — the paper's motivating workflow: choose
// quantizer and path-metric register widths that meet a BER budget with
// the least area, with each candidate's BER computed *exactly* by model
// checking instead of lengthy simulation.
//
// Shapes: more ADC levels and deeper path metrics monotonically improve
// BER until the channel noise floor dominates; state count (a proxy for
// verification cost, and loosely for area) grows with every width.
#include <cstdio>

#include "core/analyzer.hpp"
#include "viterbi/model_reduced.hpp"

namespace {

void sweepRow(const mimostat::viterbi::ViterbiParams& params) {
  using namespace mimostat;
  const viterbi::ReducedViterbiModel model(params);
  const core::PerformanceAnalyzer analyzer(model);
  const auto p2 = analyzer.check("R=? [ I=400 ]");
  std::printf("%-8d %-8d %-8d %10u %14.8f %10.3f\n", params.quantLevels,
              params.pmCap, params.bmCap, analyzer.dtmc().numStates(),
              p2.value, analyzer.buildSeconds() + p2.checkSeconds);
}

}  // namespace

int main() {
  using namespace mimostat;

  std::printf("=== Word-length exploration: Viterbi @ 6 dB, L=5 ===\n");
  std::printf("%-8s %-8s %-8s %10s %14s %10s\n", "ADC", "pmCap", "bmCap",
              "states", "BER (exact)", "time(s)");

  viterbi::ViterbiParams base;
  base.tracebackLength = 5;
  base.snrDb = 6.0;

  std::printf("-- ADC resolution sweep --\n");
  for (const int levels : {2, 4, 8, 16}) {
    auto params = base;
    params.quantLevels = levels;
    sweepRow(params);
  }

  std::printf("-- path-metric register sweep --\n");
  for (const int pmCap : {2, 4, 6, 10, 14}) {
    auto params = base;
    params.pmCap = pmCap;
    params.bmCap = std::min(params.bmCap, pmCap);
    sweepRow(params);
  }

  std::printf("-- branch-metric saturation sweep --\n");
  for (const int bmCap : {1, 2, 4, 6}) {
    auto params = base;
    params.bmCap = bmCap;
    sweepRow(params);
  }

  std::printf("\nReading: pick the smallest widths on each axis whose BER "
              "is within budget —\neach row is an exact guarantee, so no "
              "safety margin for simulation noise is needed.\n");
  return 0;
}
