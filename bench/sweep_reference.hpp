// Shared by the SweepSpec-ported bench drivers: re-answer every sweep row
// with the hand-rolled per-call checker loop the sweep replaced and report
// the largest absolute difference. 0.0 means bit-identical; NaN (e.g. a
// failed row exported as NaN) propagates so it can never read as a pass.
#pragma once

#include <cmath>
#include <limits>

#include "mc/checker.hpp"
#include "sweep/result_table.hpp"

namespace mimostat::bench {

inline double sweepVsHandRolledMaxDiff(const sweep::ResultTable& table,
                                       const mc::Checker& checker) {
  double maxDiff = 0.0;
  for (const auto& row : table.rows()) {
    // A failed row has no reference to compare against (its property may be
    // empty or unparsable) — report NaN rather than re-checking it.
    if (!row.ok()) return std::numeric_limits<double>::quiet_NaN();
    const double diff =
        std::fabs(row.value - checker.check(row.property).value);
    if (std::isnan(diff)) return std::numeric_limits<double>::quiet_NaN();
    if (diff > maxDiff) maxDiff = diff;
  }
  return maxDiff;
}

}  // namespace mimostat::bench
