// google-benchmark micro kernels for the engine primitives: sparse
// matrix-vector products (transient analysis), bounded-until iterations,
// bisimulation lumping, BDD operations and Gaussian cell probabilities.
#include <benchmark/benchmark.h>

#include "bdd/manager.hpp"
#include "comm/quantizer.hpp"
#include "dtmc/builder.hpp"
#include "lump/bisim.hpp"
#include "mc/bounded.hpp"
#include "mc/transient.hpp"
#include "util/rng.hpp"
#include "viterbi/model_reduced.hpp"

namespace {

using namespace mimostat;

const dtmc::ExplicitDtmc& viterbiDtmc() {
  static const dtmc::ExplicitDtmc dtmc = [] {
    viterbi::ViterbiParams params;
    params.tracebackLength = 5;
    const viterbi::ReducedViterbiModel model(params);
    return dtmc::buildExplicit(model).dtmc;
  }();
  return dtmc;
}

void BM_TransientStep(benchmark::State& state) {
  const auto& d = viterbiDtmc();
  std::vector<double> pi = d.initialDistribution();
  std::vector<double> next(pi.size());
  for (auto _ : state) {
    d.multiplyLeft(pi, next);
    pi.swap(next);
    benchmark::DoNotOptimize(pi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.numTransitions()));
}
BENCHMARK(BM_TransientStep);

void BM_BoundedUntil(benchmark::State& state) {
  const auto& d = viterbiDtmc();
  const la::BitVector phi(d.numStates(), true);
  la::BitVector psi(d.numStates());
  const auto flagIdx = d.varLayout().indexOf("flag");
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, flagIdx) == 1) psi.set(s);
  }
  const auto bound = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::boundedUntil(d, phi, psi, bound).data());
  }
}
BENCHMARK(BM_BoundedUntil)->Arg(16)->Arg(64)->Arg(256);

void BM_ModelBuild(benchmark::State& state) {
  viterbi::ViterbiParams params;
  params.tracebackLength = static_cast<int>(state.range(0));
  const viterbi::ReducedViterbiModel model(params);
  for (auto _ : state) {
    const auto result = dtmc::buildExplicit(model);
    benchmark::DoNotOptimize(result.dtmc.numStates());
  }
}
BENCHMARK(BM_ModelBuild)->Arg(3)->Arg(4)->Arg(5);

void BM_Lumping(benchmark::State& state) {
  const auto& d = viterbiDtmc();
  std::vector<double> reward(d.numStates(), 0.0);
  const auto flagIdx = d.varLayout().indexOf("flag");
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    reward[s] = d.varValue(s, flagIdx);
  }
  const auto keys = lump::keysFromRewardAndLabels(reward, {});
  for (auto _ : state) {
    const auto result = lump::lump(d, keys);
    benchmark::DoNotOptimize(result.partition.numBlocks);
  }
}
BENCHMARK(BM_Lumping);

void BM_BddOps(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    bdd::BddManager mgr(24);
    bdd::NodeRef f = bdd::BddManager::kFalse;
    for (int i = 0; i < 64; ++i) {
      f = mgr.bddOr(f, mgr.minterm(rng.nextBounded(1 << 24), 24));
    }
    benchmark::DoNotOptimize(mgr.satCount(f));
  }
}
BENCHMARK(BM_BddOps);

void BM_QuantizerCellProbs(benchmark::State& state) {
  const comm::UniformQuantizer quant(8, 3.0);
  double signal = -2.0;
  for (auto _ : state) {
    signal = signal >= 2.0 ? -2.0 : signal + 0.1;
    benchmark::DoNotOptimize(quant.cellProbabilities(signal, 0.8).data());
  }
}
BENCHMARK(BM_QuantizerCellProbs);

}  // namespace
