// google-benchmark micro kernels for the engine primitives: sparse
// matrix-vector products (transient analysis), bounded-until iterations,
// bisimulation lumping, BDD operations, Gaussian cell probabilities and
// per-SIMD-target masked SpMM (registered only for targets this host can
// run). A custom main() first replays every supported SIMD target against
// the forced-scalar kernels and exits 1 on any bitwise mismatch — the
// benchmark rows are only worth reading if the dispatch is exact.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "comm/quantizer.hpp"
#include "dtmc/builder.hpp"
#include "la/exec.hpp"
#include "la/simd.hpp"
#include "la/spmv.hpp"
#include "lump/bisim.hpp"
#include "mc/bounded.hpp"
#include "mc/transient.hpp"
#include "util/rng.hpp"
#include "viterbi/model_reduced.hpp"

namespace {

using namespace mimostat;

const dtmc::ExplicitDtmc& viterbiDtmc() {
  static const dtmc::ExplicitDtmc dtmc = [] {
    viterbi::ViterbiParams params;
    params.tracebackLength = 5;
    const viterbi::ReducedViterbiModel model(params);
    return dtmc::buildExplicit(model).dtmc;
  }();
  return dtmc;
}

void BM_TransientStep(benchmark::State& state) {
  const auto& d = viterbiDtmc();
  std::vector<double> pi = d.initialDistribution();
  std::vector<double> next(pi.size());
  for (auto _ : state) {
    d.multiplyLeft(pi, next);
    pi.swap(next);
    benchmark::DoNotOptimize(pi.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d.numTransitions()));
}
BENCHMARK(BM_TransientStep);

void BM_BoundedUntil(benchmark::State& state) {
  const auto& d = viterbiDtmc();
  const la::BitVector phi(d.numStates(), true);
  la::BitVector psi(d.numStates());
  const auto flagIdx = d.varLayout().indexOf("flag");
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, flagIdx) == 1) psi.set(s);
  }
  const auto bound = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::boundedUntil(d, phi, psi, bound).data());
  }
}
BENCHMARK(BM_BoundedUntil)->Arg(16)->Arg(64)->Arg(256);

void BM_ModelBuild(benchmark::State& state) {
  viterbi::ViterbiParams params;
  params.tracebackLength = static_cast<int>(state.range(0));
  const viterbi::ReducedViterbiModel model(params);
  for (auto _ : state) {
    const auto result = dtmc::buildExplicit(model);
    benchmark::DoNotOptimize(result.dtmc.numStates());
  }
}
BENCHMARK(BM_ModelBuild)->Arg(3)->Arg(4)->Arg(5);

void BM_Lumping(benchmark::State& state) {
  const auto& d = viterbiDtmc();
  std::vector<double> reward(d.numStates(), 0.0);
  const auto flagIdx = d.varLayout().indexOf("flag");
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    reward[s] = d.varValue(s, flagIdx);
  }
  const auto keys = lump::keysFromRewardAndLabels(reward, {});
  for (auto _ : state) {
    const auto result = lump::lump(d, keys);
    benchmark::DoNotOptimize(result.partition.numBlocks);
  }
}
BENCHMARK(BM_Lumping);

void BM_BddOps(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  for (auto _ : state) {
    bdd::BddManager mgr(24);
    bdd::NodeRef f = bdd::BddManager::kFalse;
    for (int i = 0; i < 64; ++i) {
      f = mgr.bddOr(f, mgr.minterm(rng.nextBounded(1 << 24), 24));
    }
    benchmark::DoNotOptimize(mgr.satCount(f));
  }
}
BENCHMARK(BM_BddOps);

void BM_QuantizerCellProbs(benchmark::State& state) {
  const comm::UniformQuantizer quant(8, 3.0);
  double signal = -2.0;
  for (auto _ : state) {
    signal = signal >= 2.0 ? -2.0 : signal + 0.1;
    benchmark::DoNotOptimize(quant.cellProbabilities(signal, 0.8).data());
  }
}
BENCHMARK(BM_QuantizerCellProbs);

// ------------------------------------------------------ SIMD masked SpMM

constexpr la::SimdTarget kAllTargets[] = {
    la::SimdTarget::kScalar, la::SimdTarget::kSse2, la::SimdTarget::kAvx2,
    la::SimdTarget::kNeon};

/// Masked bounded-traversal workload on the Viterbi chain: 8 RHS columns,
/// ~1/8 of the entries frozen per column.
struct MaskedFixture {
  const la::CsrMatrix* m = nullptr;
  std::size_t k = 8;
  std::vector<double> X;
  std::vector<la::BitVector> masks;
};

const MaskedFixture& maskedFixture() {
  static const MaskedFixture fixture = [] {
    MaskedFixture f;
    f.m = &viterbiDtmc().matrix();
    const std::uint32_t n = f.m->numRows();
    f.X.resize(static_cast<std::size_t>(n) * f.k);
    f.masks.assign(f.k, la::BitVector(n));
    util::Xoshiro256 rng(71);
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::size_t j = 0; j < f.k; ++j) {
        f.X[s * f.k + j] = rng.nextDouble();
        if (rng.nextBounded(8) == 0) f.masks[j].set(s);
      }
    }
    return f;
  }();
  return fixture;
}

void BM_MaskedSpmmTarget(benchmark::State& state, la::SimdTarget target) {
  const MaskedFixture& f = maskedFixture();
  la::Exec exec;
  exec.simd = target;
  std::vector<double> Y;
  for (auto _ : state) {
    la::spmmMasked(*f.m, f.X, f.k, f.masks, Y, exec);
    benchmark::DoNotOptimize(Y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.m->numNonZeros()) *
                          static_cast<std::int64_t>(f.k));
}

bool bitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Replay every supported target against the forced-scalar kernels; any
/// byte of divergence fails the run before a single benchmark executes.
bool verifySimdTargetsBitwise() {
  const MaskedFixture& f = maskedFixture();
  la::Exec scalarExec;
  scalarExec.simd = la::SimdTarget::kScalar;
  std::vector<double> refMasked;
  la::spmmMasked(*f.m, f.X, f.k, f.masks, refMasked, scalarExec);
  std::vector<double> refPlain;
  la::spmm(*f.m, f.X, f.k, refPlain, scalarExec);
  bool ok = true;
  for (const la::SimdTarget target : kAllTargets) {
    if (!la::simdTargetSupported(target)) continue;
    la::Exec exec;
    exec.simd = target;
    std::vector<double> Y;
    la::spmmMasked(*f.m, f.X, f.k, f.masks, Y, exec);
    std::vector<double> Z;
    la::spmm(*f.m, f.X, f.k, Z, exec);
    if (!bitEqual(Y, refMasked) || !bitEqual(Z, refPlain)) {
      std::fprintf(stderr,
                   "FAIL: %s SpMM diverged bitwise from forced scalar\n",
                   la::simdTargetName(target));
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  for (const la::SimdTarget target : kAllTargets) {
    if (!la::simdTargetSupported(target)) continue;
    benchmark::RegisterBenchmark(
        (std::string("BM_MaskedSpmm/") + la::simdTargetName(target)).c_str(),
        [target](benchmark::State& state) {
          BM_MaskedSpmmTarget(state, target);
        });
  }
  if (!verifySimdTargetsBitwise()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
