// bench_la — the linear-algebra backbone under load.
//
//   1. SpMV: the legacy scalar scatter multiplyLeft vs the blocked gather
//      (la::spmvLeft, sequential) vs the row-partitioned parallel gather at
//      1/2/8 pool threads, propagating a distribution over a large random
//      stochastic chain.
//   2. SpMM: k transient sweeps per-call (k matrix traversals per step) vs
//      one SpMM-batched mc::TransientSweep (one traversal per step).
//   3. Masked SpMM: the legacy n x k byte-mask frozen-entry loop vs
//      la::spmmMasked over packed la::BitVector column masks, sequential
//      and at 1/2/8 pool threads — same values bit for bit, 8x less mask
//      memory (the mask_bytes columns in the CSV).
//   4. SIMD dispatch: masked SpMM forced to scalar vs every compiled-and-
//      supported vector target (sequential and at 2/8 pool threads). The
//      forced-scalar output is the oracle; each target's panel count and
//      per-panel traversal time land in the simd_target/panels/
//      seconds_per_panel CSV columns.
//
// Every variant is checked against the scalar path with max|diff| asserted
// EXACTLY 0.0 — the la:: determinism contract is bit-identity, not
// tolerance — and the process exits 1 on any mismatch (this is the ctest
// smoke). `--csv <path>` writes the measurements for the CI artifact.
//
// Note: the parallel rows only show wall-clock wins on multi-core hosts; on
// a single hardware thread they measure dispatch overhead (values still
// must match bitwise, which is the point of the smoke).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "engine/thread_pool.hpp"
#include "la/csr_matrix.hpp"
#include "la/exec.hpp"
#include "la/simd.hpp"
#include "la/spmv.hpp"
#include "mc/transient.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace mimostat;

struct Config {
  std::uint32_t states = 150'000;
  std::uint32_t fanout = 8;
  std::uint64_t steps = 40;
  std::size_t rhs = 8;
  const char* csvPath = nullptr;
};

/// Random stochastic chain as an explicit DTMC (uniform initial
/// distribution, no decoded variables — this bench only multiplies).
dtmc::ExplicitDtmc randomChain(const Config& config) {
  util::Xoshiro256 rng(0x1A2B3C4D5E6Full);
  dtmc::ExplicitDtmc::Raw raw;
  raw.rowPtr = {0};
  std::vector<std::pair<std::uint32_t, double>> row;
  for (std::uint32_t s = 0; s < config.states; ++s) {
    row.clear();
    for (std::uint32_t k = 0; k < config.fanout; ++k) {
      // A local neighbour plus far jumps: banded structure with shuffles,
      // roughly what lumped Viterbi/MIMO chains look like.
      const auto target = static_cast<std::uint32_t>(
          k == 0 ? (s + 1) % config.states : rng.nextBounded(config.states));
      row.emplace_back(target, rng.nextDouble() + 0.05);
    }
    std::sort(row.begin(), row.end());
    double total = 0.0;
    for (const auto& [c, w] : row) total += w;
    std::uint32_t lastCol = 0;
    bool first = true;
    for (const auto& [c, w] : row) {
      if (!first && c == lastCol) {
        raw.val.back() += w / total;  // merge duplicate targets
        continue;
      }
      raw.col.push_back(c);
      raw.val.push_back(w / total);
      lastCol = c;
      first = false;
    }
    raw.rowPtr.push_back(raw.col.size());
  }
  raw.initial.assign(config.states, 1.0 / config.states);
  raw.states.assign(config.states, dtmc::State{});
  return dtmc::ExplicitDtmc::fromRaw(std::move(raw));
}

/// The pre-refactor scalar scatter multiplyLeft, kept verbatim as the
/// reference the la:: paths must reproduce bit for bit.
void scalarScatterLeft(const la::CsrMatrix& m, const std::vector<double>& x,
                       std::vector<double>& y) {
  y.assign(m.numCols(), 0.0);
  for (std::uint32_t s = 0; s < m.numRows(); ++s) {
    const double xs = x[s];
    if (xs == 0.0) continue;
    for (std::uint64_t k = m.rowPtr()[s]; k < m.rowPtr()[s + 1]; ++k) {
      y[m.col()[k]] += xs * m.val()[k];
    }
  }
}

/// The pre-refactor byte-mask frozen-entry SpMM, kept verbatim as the
/// oracle for the packed-mask kernel: wherever mask[s*k+j] is set, output
/// (s, j) keeps X's value; everywhere else the row gathers in CSR order —
/// the identical floating-point sequence la::spmmMasked must produce.
void byteMaskedSpmm(const la::CsrMatrix& m, const std::vector<double>& X,
                    std::size_t k, const std::vector<std::uint8_t>& mask,
                    std::vector<double>& Y) {
  const std::uint32_t n = m.numRows();
  Y.assign(static_cast<std::size_t>(n) * k, 0.0);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::size_t j = 0; j < k; ++j) {
      if (mask[static_cast<std::size_t>(s) * k + j] != 0) {
        Y[static_cast<std::size_t>(s) * k + j] =
            X[static_cast<std::size_t>(s) * k + j];
        continue;
      }
      double acc = 0.0;
      for (std::uint64_t e = m.rowPtr()[s]; e < m.rowPtr()[s + 1]; ++e) {
        acc += m.val()[e] * X[static_cast<std::size_t>(m.col()[e]) * k + j];
      }
      Y[static_cast<std::size_t>(s) * k + j] = acc;
    }
  }
}

double maxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (diff > worst) worst = diff;
  }
  return worst;
}

la::Exec poolExec(engine::ThreadPool& pool) {
  la::Exec exec;
  exec.runner = engine::laRunnerFor(pool);
  exec.parallelThresholdNnz = 1;  // always fan out: this is the bench
  return exec;
}

struct Row {
  std::string section;
  std::string kernel;
  std::size_t threads;  // 0 = no pool
  double seconds;
  double speedup;
  double maxDiff;
  /// Masked-SpMM rows only: resident bytes of this variant's masks.
  std::uint64_t maskBytes = 0;
  /// SIMD rows only: the forced dispatch target ("" = default dispatch).
  std::string simdTarget;
  /// SIMD rows only: column panels per product (0 = not recorded).
  std::uint64_t panels = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const auto intArg = [&](const char* flag, auto& out) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        out = static_cast<std::remove_reference_t<decltype(out)>>(
            std::strtoull(argv[++i], nullptr, 10));
        return true;
      }
      return false;
    };
    if (intArg("--states", config.states) || intArg("--fanout", config.fanout) ||
        intArg("--steps", config.steps) || intArg("--rhs", config.rhs)) {
      continue;
    }
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      config.csvPath = argv[++i];
      continue;
    }
    std::fprintf(stderr,
                 "usage: bench_la [--states N] [--fanout F] [--steps T] "
                 "[--rhs K] [--csv path]\n");
    return 2;
  }

  std::printf("=== bench_la: scalar vs blocked vs parallel SpMV ===\n");
  const util::Stopwatch buildTimer;
  const dtmc::ExplicitDtmc chain = randomChain(config);
  const la::CsrMatrix& P = chain.matrix();
  std::printf("chain: %u states, %llu transitions, %zu blocks (built in %.2fs)\n\n",
              P.numRows(), static_cast<unsigned long long>(P.numNonZeros()),
              P.blockCount(), buildTimer.elapsedSeconds());

  std::vector<Row> rows;
  bool allExact = true;
  const auto record = [&](const std::string& section, const std::string& kernel,
                          std::size_t threads, double seconds, double scalarSec,
                          double maxDiff, std::uint64_t maskBytes = 0,
                          const std::string& simdTarget = "",
                          std::uint64_t panels = 0) {
    rows.push_back({section, kernel, threads, seconds, scalarSec / seconds,
                    maxDiff, maskBytes, simdTarget, panels});
    allExact = allExact && maxDiff == 0.0;
    std::printf("  %-22s %8.3fs  speedup %5.2fx  max|diff| %g\n",
                (kernel + (threads != 0 ? "(" + std::to_string(threads) + "t)"
                                        : std::string{}))
                    .c_str(),
                seconds, scalarSec / seconds, maxDiff);
  };

  // ---- SpMV: propagate the initial distribution `steps` times.
  const auto propagate =
      [&](const std::function<void(const std::vector<double>&,
                                   std::vector<double>&)>& kernel,
          double& seconds) {
        std::vector<double> pi = chain.initialDistribution();
        std::vector<double> next(pi.size());
        const util::Stopwatch timer;
        for (std::uint64_t t = 0; t < config.steps; ++t) {
          kernel(pi, next);
          pi.swap(next);
        }
        seconds = timer.elapsedSeconds();
        return pi;
      };

  double scalarSec = 0.0;
  const std::vector<double> scalarPi = propagate(
      [&](const std::vector<double>& x, std::vector<double>& y) {
        scalarScatterLeft(P, x, y);
      },
      scalarSec);
  record("spmv", "scalar-scatter", 0, scalarSec, scalarSec, 0.0);

  double blockedSec = 0.0;
  const std::vector<double> blockedPi = propagate(
      [&](const std::vector<double>& x, std::vector<double>& y) {
        la::spmvLeft(P, x, y);
      },
      blockedSec);
  record("spmv", "blocked-gather", 0, blockedSec, scalarSec,
         maxAbsDiff(blockedPi, scalarPi));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    engine::ThreadPool pool(threads);
    const la::Exec exec = poolExec(pool);
    double seconds = 0.0;
    const std::vector<double> pi = propagate(
        [&](const std::vector<double>& x, std::vector<double>& y) {
          la::spmvLeft(P, x, y, exec);
        },
        seconds);
    record("spmv", "parallel-gather", threads, seconds, scalarSec,
           maxAbsDiff(pi, scalarPi));
  }

  // ---- SpMM: k transient sweeps, per-call vs batched.
  std::printf("\n=== per-call vs SpMM-batched transient sweep (k=%zu) ===\n",
              config.rhs);
  std::vector<std::vector<double>> starts;
  for (std::size_t j = 0; j < config.rhs; ++j) {
    std::vector<double> start(P.numRows(), 0.0);
    start[(P.numRows() / config.rhs) * j] = 1.0;
    starts.push_back(std::move(start));
  }

  double perCallSec = 0.0;
  std::vector<std::vector<double>> perCall;
  {
    const util::Stopwatch timer;
    for (std::size_t j = 0; j < config.rhs; ++j) {
      mc::TransientSweep sweep(chain, {starts[j]});
      sweep.advanceTo(config.steps);
      perCall.push_back(sweep.distributionAt(0));
    }
    perCallSec = timer.elapsedSeconds();
  }
  record("spmm", "per-call-sweeps", 0, perCallSec, perCallSec, 0.0);

  {
    const util::Stopwatch timer;
    mc::TransientSweep sweep(chain, starts);
    sweep.advanceTo(config.steps);
    const double seconds = timer.elapsedSeconds();
    double worst = 0.0;
    for (std::size_t j = 0; j < config.rhs; ++j) {
      const double diff = maxAbsDiff(sweep.distributionAt(j), perCall[j]);
      if (diff > worst) worst = diff;
    }
    record("spmm", "spmm-batched", 0, seconds, perCallSec, worst);
  }

  // ---- masked SpMM: the bounded-traversal update shape. k column masks
  // freeze ~1/8 of the entries; the byte-mask loop is the oracle, the
  // packed-BitVector kernel must match it bit for bit while holding the
  // masks in 8x less memory.
  std::printf("\n=== masked SpMM: byte-mask oracle vs packed la::BitVector "
              "(k=%zu) ===\n",
              config.rhs);
  const std::uint32_t n = P.numRows();
  std::vector<std::uint8_t> byteMask(static_cast<std::size_t>(n) * config.rhs,
                                     0);
  std::vector<la::BitVector> packedMasks(config.rhs, la::BitVector(n));
  {
    util::Xoshiro256 maskRng(0xB17F00Dull);
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::size_t j = 0; j < config.rhs; ++j) {
        if (maskRng.nextBounded(8) == 0) {
          byteMask[static_cast<std::size_t>(s) * config.rhs + j] = 1;
          packedMasks[j].set(s);
        }
      }
    }
  }
  std::uint64_t packedMaskBytes = 0;
  for (const la::BitVector& m : packedMasks) {
    packedMaskBytes += m.approxBytes();
  }
  const auto byteMaskBytes = static_cast<std::uint64_t>(byteMask.size());
  std::printf("  mask bytes: %llu byte-per-state -> %llu packed (%.1fx)\n",
              static_cast<unsigned long long>(byteMaskBytes),
              static_cast<unsigned long long>(packedMaskBytes),
              static_cast<double>(byteMaskBytes) /
                  static_cast<double>(packedMaskBytes));

  std::vector<double> X0(static_cast<std::size_t>(n) * config.rhs);
  for (std::size_t i = 0; i < X0.size(); ++i) {
    X0[i] = byteMask[i] != 0 ? 1.0 : 0.0;
  }
  const auto propagateMasked =
      [&](const std::function<void(const std::vector<double>&,
                                   std::vector<double>&)>& kernel,
          double& seconds) {
        std::vector<double> X = X0;
        std::vector<double> Y(X.size());
        const util::Stopwatch timer;
        for (std::uint64_t t = 0; t < config.steps; ++t) {
          kernel(X, Y);
          X.swap(Y);
        }
        seconds = timer.elapsedSeconds();
        return X;
      };

  double byteMaskSec = 0.0;
  const std::vector<double> byteMaskOut = propagateMasked(
      [&](const std::vector<double>& X, std::vector<double>& Y) {
        byteMaskedSpmm(P, X, config.rhs, byteMask, Y);
      },
      byteMaskSec);
  record("spmm-masked", "byte-mask", 0, byteMaskSec, byteMaskSec, 0.0,
         byteMaskBytes);

  double packedSec = 0.0;
  const std::vector<double> packedOut = propagateMasked(
      [&](const std::vector<double>& X, std::vector<double>& Y) {
        la::spmmMasked(P, X, config.rhs, packedMasks, Y);
      },
      packedSec);
  record("spmm-masked", "bitvector", 0, packedSec, byteMaskSec,
         maxAbsDiff(packedOut, byteMaskOut), packedMaskBytes);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    engine::ThreadPool pool(threads);
    const la::Exec exec = poolExec(pool);
    double seconds = 0.0;
    const std::vector<double> out = propagateMasked(
        [&](const std::vector<double>& X, std::vector<double>& Y) {
          la::spmmMasked(P, X, config.rhs, packedMasks, Y, exec);
        },
        seconds);
    record("spmm-masked", "bitvector", threads, seconds, byteMaskSec,
           maxAbsDiff(out, byteMaskOut), packedMaskBytes);
  }
  std::printf("  per-step masked traversal: %.4fs byte-mask, %.4fs packed\n",
              byteMaskSec / static_cast<double>(config.steps),
              packedSec / static_cast<double>(config.steps));

  // ---- SIMD dispatch: the same masked bounded-traversal shape, forced to
  // scalar and then to every compiled-and-supported vector target. The
  // forced-scalar run is the oracle; any nonzero diff fails the smoke.
  std::printf("\n=== SIMD dispatch: forced scalar vs runtime targets "
              "(k=%zu) ===\n",
              config.rhs);
  la::Exec scalarSimdExec;
  scalarSimdExec.simd = la::SimdTarget::kScalar;
  la::SpmmStats scalarStats;
  double simdScalarSec = 0.0;
  const std::vector<double> simdScalarOut = propagateMasked(
      [&](const std::vector<double>& X, std::vector<double>& Y) {
        la::spmmMasked(P, X, config.rhs, packedMasks, Y, scalarSimdExec,
                       &scalarStats);
      },
      simdScalarSec);
  record("spmm-simd", "scalar", 0, simdScalarSec, simdScalarSec,
         maxAbsDiff(simdScalarOut, byteMaskOut), packedMaskBytes, "scalar",
         scalarStats.panels);

  double bestTargetSec = simdScalarSec;
  const char* bestTargetName = "scalar";
  for (const la::SimdTarget target :
       {la::SimdTarget::kSse2, la::SimdTarget::kAvx2, la::SimdTarget::kNeon}) {
    if (!la::simdTargetSupported(target)) continue;
    const char* name = la::simdTargetName(target);
    la::Exec exec;
    exec.simd = target;
    la::SpmmStats stats;
    double seconds = 0.0;
    const std::vector<double> out = propagateMasked(
        [&](const std::vector<double>& X, std::vector<double>& Y) {
          la::spmmMasked(P, X, config.rhs, packedMasks, Y, exec, &stats);
        },
        seconds);
    record("spmm-simd", name, 0, seconds, simdScalarSec,
           maxAbsDiff(out, simdScalarOut), packedMaskBytes, name,
           stats.panels);
    if (seconds < bestTargetSec) {
      bestTargetSec = seconds;
      bestTargetName = name;
    }
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      engine::ThreadPool pool(threads);
      la::Exec pooled = poolExec(pool);
      pooled.simd = target;
      la::SpmmStats pooledStats;
      double pooledSec = 0.0;
      const std::vector<double> pooledOut = propagateMasked(
          [&](const std::vector<double>& X, std::vector<double>& Y) {
            la::spmmMasked(P, X, config.rhs, packedMasks, Y, pooled,
                           &pooledStats);
          },
          pooledSec);
      record("spmm-simd", name, threads, pooledSec, simdScalarSec,
             maxAbsDiff(pooledOut, simdScalarOut), packedMaskBytes, name,
             pooledStats.panels);
    }
  }
  std::printf("  single-core masked-SpMM speedup (%s vs forced scalar): "
              "%.2fx\n",
              bestTargetName, simdScalarSec / bestTargetSec);

  if (config.csvPath != nullptr) {
    std::ofstream csv(config.csvPath);
    csv << "section,kernel,threads,states,nnz,rhs,steps,seconds,"
           "seconds_per_step,speedup,max_abs_diff,mask_bytes,"
           "simd_target,panels,seconds_per_panel\n";
    for (const Row& row : rows) {
      // Per-panel traversal time: each step walks `panels` column panels.
      const double secondsPerPanel =
          row.panels == 0
              ? 0.0
              : row.seconds / static_cast<double>(config.steps * row.panels);
      csv << row.section << ',' << row.kernel << ',' << row.threads << ','
          << P.numRows() << ',' << P.numNonZeros() << ',' << config.rhs << ','
          << config.steps << ',' << row.seconds << ','
          << row.seconds / static_cast<double>(config.steps) << ','
          << row.speedup << ',' << row.maxDiff << ',' << row.maskBytes << ','
          << row.simdTarget << ',' << row.panels << ',' << secondsPerPanel
          << '\n';
    }
    std::printf("\nwrote %s\n", config.csvPath);
  }

  if (!allExact) {
    std::printf("\nFAIL: a la:: path diverged from the scalar reference\n");
    return 1;
  }
  std::printf("\nOK: every la:: path bit-identical to the scalar reference\n");
  return 0;
}
