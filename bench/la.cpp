// bench_la — the linear-algebra backbone under load.
//
//   1. SpMV: the legacy scalar scatter multiplyLeft vs the blocked gather
//      (la::spmvLeft, sequential) vs the row-partitioned parallel gather at
//      1/2/8 pool threads, propagating a distribution over a large random
//      stochastic chain.
//   2. SpMM: k transient sweeps per-call (k matrix traversals per step) vs
//      one SpMM-batched mc::TransientSweep (one traversal per step).
//
// Every variant is checked against the scalar path with max|diff| asserted
// EXACTLY 0.0 — the la:: determinism contract is bit-identity, not
// tolerance — and the process exits 1 on any mismatch (this is the ctest
// smoke). `--csv <path>` writes the measurements for the CI artifact.
//
// Note: the parallel rows only show wall-clock wins on multi-core hosts; on
// a single hardware thread they measure dispatch overhead (values still
// must match bitwise, which is the point of the smoke).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "engine/thread_pool.hpp"
#include "la/csr_matrix.hpp"
#include "la/exec.hpp"
#include "la/spmv.hpp"
#include "mc/transient.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace mimostat;

struct Config {
  std::uint32_t states = 150'000;
  std::uint32_t fanout = 8;
  std::uint64_t steps = 40;
  std::size_t rhs = 8;
  const char* csvPath = nullptr;
};

/// Random stochastic chain as an explicit DTMC (uniform initial
/// distribution, no decoded variables — this bench only multiplies).
dtmc::ExplicitDtmc randomChain(const Config& config) {
  util::Xoshiro256 rng(0x1A2B3C4D5E6Full);
  dtmc::ExplicitDtmc::Raw raw;
  raw.rowPtr = {0};
  std::vector<std::pair<std::uint32_t, double>> row;
  for (std::uint32_t s = 0; s < config.states; ++s) {
    row.clear();
    for (std::uint32_t k = 0; k < config.fanout; ++k) {
      // A local neighbour plus far jumps: banded structure with shuffles,
      // roughly what lumped Viterbi/MIMO chains look like.
      const auto target = static_cast<std::uint32_t>(
          k == 0 ? (s + 1) % config.states : rng.nextBounded(config.states));
      row.emplace_back(target, rng.nextDouble() + 0.05);
    }
    std::sort(row.begin(), row.end());
    double total = 0.0;
    for (const auto& [c, w] : row) total += w;
    std::uint32_t lastCol = 0;
    bool first = true;
    for (const auto& [c, w] : row) {
      if (!first && c == lastCol) {
        raw.val.back() += w / total;  // merge duplicate targets
        continue;
      }
      raw.col.push_back(c);
      raw.val.push_back(w / total);
      lastCol = c;
      first = false;
    }
    raw.rowPtr.push_back(raw.col.size());
  }
  raw.initial.assign(config.states, 1.0 / config.states);
  raw.states.assign(config.states, dtmc::State{});
  return dtmc::ExplicitDtmc::fromRaw(std::move(raw));
}

/// The pre-refactor scalar scatter multiplyLeft, kept verbatim as the
/// reference the la:: paths must reproduce bit for bit.
void scalarScatterLeft(const la::CsrMatrix& m, const std::vector<double>& x,
                       std::vector<double>& y) {
  y.assign(m.numCols(), 0.0);
  for (std::uint32_t s = 0; s < m.numRows(); ++s) {
    const double xs = x[s];
    if (xs == 0.0) continue;
    for (std::uint64_t k = m.rowPtr()[s]; k < m.rowPtr()[s + 1]; ++k) {
      y[m.col()[k]] += xs * m.val()[k];
    }
  }
}

double maxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (diff > worst) worst = diff;
  }
  return worst;
}

la::Exec poolExec(engine::ThreadPool& pool) {
  la::Exec exec;
  exec.runner = engine::laRunnerFor(pool);
  exec.parallelThresholdNnz = 1;  // always fan out: this is the bench
  return exec;
}

struct Row {
  std::string section;
  std::string kernel;
  std::size_t threads;  // 0 = no pool
  double seconds;
  double speedup;
  double maxDiff;
};

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const auto intArg = [&](const char* flag, auto& out) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        out = static_cast<std::remove_reference_t<decltype(out)>>(
            std::strtoull(argv[++i], nullptr, 10));
        return true;
      }
      return false;
    };
    if (intArg("--states", config.states) || intArg("--fanout", config.fanout) ||
        intArg("--steps", config.steps) || intArg("--rhs", config.rhs)) {
      continue;
    }
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      config.csvPath = argv[++i];
      continue;
    }
    std::fprintf(stderr,
                 "usage: bench_la [--states N] [--fanout F] [--steps T] "
                 "[--rhs K] [--csv path]\n");
    return 2;
  }

  std::printf("=== bench_la: scalar vs blocked vs parallel SpMV ===\n");
  const util::Stopwatch buildTimer;
  const dtmc::ExplicitDtmc chain = randomChain(config);
  const la::CsrMatrix& P = chain.matrix();
  std::printf("chain: %u states, %llu transitions, %zu blocks (built in %.2fs)\n\n",
              P.numRows(), static_cast<unsigned long long>(P.numNonZeros()),
              P.blockCount(), buildTimer.elapsedSeconds());

  std::vector<Row> rows;
  bool allExact = true;
  const auto record = [&](const std::string& section, const std::string& kernel,
                          std::size_t threads, double seconds, double scalarSec,
                          double maxDiff) {
    rows.push_back(
        {section, kernel, threads, seconds, scalarSec / seconds, maxDiff});
    allExact = allExact && maxDiff == 0.0;
    std::printf("  %-22s %8.3fs  speedup %5.2fx  max|diff| %g\n",
                (kernel + (threads != 0 ? "(" + std::to_string(threads) + "t)"
                                        : std::string{}))
                    .c_str(),
                seconds, scalarSec / seconds, maxDiff);
  };

  // ---- SpMV: propagate the initial distribution `steps` times.
  const auto propagate =
      [&](const std::function<void(const std::vector<double>&,
                                   std::vector<double>&)>& kernel,
          double& seconds) {
        std::vector<double> pi = chain.initialDistribution();
        std::vector<double> next(pi.size());
        const util::Stopwatch timer;
        for (std::uint64_t t = 0; t < config.steps; ++t) {
          kernel(pi, next);
          pi.swap(next);
        }
        seconds = timer.elapsedSeconds();
        return pi;
      };

  double scalarSec = 0.0;
  const std::vector<double> scalarPi = propagate(
      [&](const std::vector<double>& x, std::vector<double>& y) {
        scalarScatterLeft(P, x, y);
      },
      scalarSec);
  record("spmv", "scalar-scatter", 0, scalarSec, scalarSec, 0.0);

  double blockedSec = 0.0;
  const std::vector<double> blockedPi = propagate(
      [&](const std::vector<double>& x, std::vector<double>& y) {
        la::spmvLeft(P, x, y);
      },
      blockedSec);
  record("spmv", "blocked-gather", 0, blockedSec, scalarSec,
         maxAbsDiff(blockedPi, scalarPi));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    engine::ThreadPool pool(threads);
    const la::Exec exec = poolExec(pool);
    double seconds = 0.0;
    const std::vector<double> pi = propagate(
        [&](const std::vector<double>& x, std::vector<double>& y) {
          la::spmvLeft(P, x, y, exec);
        },
        seconds);
    record("spmv", "parallel-gather", threads, seconds, scalarSec,
           maxAbsDiff(pi, scalarPi));
  }

  // ---- SpMM: k transient sweeps, per-call vs batched.
  std::printf("\n=== per-call vs SpMM-batched transient sweep (k=%zu) ===\n",
              config.rhs);
  std::vector<std::vector<double>> starts;
  for (std::size_t j = 0; j < config.rhs; ++j) {
    std::vector<double> start(P.numRows(), 0.0);
    start[(P.numRows() / config.rhs) * j] = 1.0;
    starts.push_back(std::move(start));
  }

  double perCallSec = 0.0;
  std::vector<std::vector<double>> perCall;
  {
    const util::Stopwatch timer;
    for (std::size_t j = 0; j < config.rhs; ++j) {
      mc::TransientSweep sweep(chain, {starts[j]});
      sweep.advanceTo(config.steps);
      perCall.push_back(sweep.distributionAt(0));
    }
    perCallSec = timer.elapsedSeconds();
  }
  record("spmm", "per-call-sweeps", 0, perCallSec, perCallSec, 0.0);

  {
    const util::Stopwatch timer;
    mc::TransientSweep sweep(chain, starts);
    sweep.advanceTo(config.steps);
    const double seconds = timer.elapsedSeconds();
    double worst = 0.0;
    for (std::size_t j = 0; j < config.rhs; ++j) {
      const double diff = maxAbsDiff(sweep.distributionAt(j), perCall[j]);
      if (diff > worst) worst = diff;
    }
    record("spmm", "spmm-batched", 0, seconds, perCallSec, worst);
  }

  if (config.csvPath != nullptr) {
    std::ofstream csv(config.csvPath);
    csv << "section,kernel,threads,states,nnz,rhs,steps,seconds,"
           "speedup,max_abs_diff\n";
    for (const Row& row : rows) {
      csv << row.section << ',' << row.kernel << ',' << row.threads << ','
          << P.numRows() << ',' << P.numNonZeros() << ',' << config.rhs << ','
          << config.steps << ',' << row.seconds << ',' << row.speedup << ','
          << row.maxDiff << '\n';
    }
    std::printf("\nwrote %s\n", config.csvPath);
  }

  if (!allExact) {
    std::printf("\nFAIL: a la:: path diverged from the scalar reference\n");
    return 1;
  }
  std::printf("\nOK: every la:: path bit-identical to the scalar reference\n");
  return 0;
}
