// Table III reproduction: P2 for the Viterbi decoder as a function of T,
// demonstrating steady state (paper, RI=263):
//   T=100: 0.2373, T=300: 0.2394, T=600: 0.2397, T=1000: 0.2398.
// The shape to verify: the value stabilises for T >> RI, so the
// steady-state P2 can be read off as the BER.
//
// The horizon study is a declarative sweep::SweepSpec: one axis T, one
// shared model, one property per point. The runner coalesces every point
// into a single engine request, so all horizons ride one 1000-step
// transient sweep — and the numbers are asserted bit-identical to the
// hand-rolled per-horizon checker loop this bench used to be.
//
// `--csv <path>` additionally writes the sweep's long-format CSV (used by
// the CI sweep-smoke job as a workflow artifact). `--trace <path>` enables
// the process tracer and writes the run's span tree as Chrome trace-event
// JSON (load it in Perfetto / chrome://tracing).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "mc/transient.hpp"
#include "obs/trace.hpp"
#include "sweep/runner.hpp"
#include "sweep_reference.hpp"
#include "viterbi/model_reduced.hpp"

int main(int argc, char** argv) {
  using namespace mimostat;

  const char* csvPath = nullptr;
  const char* tracePath = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--csv requires a path argument\n");
        return 2;
      }
      csvPath = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace requires a path argument\n");
        return 2;
      }
      tracePath = argv[++i];
    }
  }
  if (tracePath != nullptr) obs::Tracer::global().setEnabled(true);

  std::printf("=== Table III: P2 for the Viterbi decoder vs T ===\n");
  std::printf("(paper: 0.2373 / 0.2394 / 0.2397 / 0.2398, RI=263)\n\n");

  viterbi::ViterbiParams params;  // L=6, SNR 5 dB
  const auto model = std::make_shared<viterbi::ReducedViterbiModel>(params);

  // Our documented quantizer widths give a much shorter mixing time than
  // the authors' (steady by T~60 vs their T~300); the small-T rows expose
  // the same transient shape their Table III shows between T=100 and 1000.
  sweep::SweepSpec spec("table3");
  spec.space.cross(sweep::Axis::values(
      "T", {std::int64_t{5}, std::int64_t{10}, std::int64_t{25},
            std::int64_t{50}, std::int64_t{100}, std::int64_t{300},
            std::int64_t{600}, std::int64_t{1000}}));
  spec.share(model);
  spec.properties = [](const sweep::Params& p) {
    return std::vector<std::string>{"R=? [ I=" + std::to_string(p.getInt("T")) +
                                    " ]"};
  };

  engine::AnalysisEngine engine;
  const sweep::Runner runner(engine);
  const sweep::ResultTable table = runner.run(spec);

  const auto& rows = table.rows();
  std::printf("Model: %llu states, %llu transitions, built once for %zu "
              "points (batched sweep: %.3fs total)\n\n",
              static_cast<unsigned long long>(rows.front().states),
              static_cast<unsigned long long>(rows.front().transitions),
              rows.size(), rows.back().checkSeconds);

  std::printf("%-8s %-14s %-10s\n", "T", "P2", "batched");
  for (const auto& row : rows) {
    std::printf("%-8s %-14.6g %-10s\n",
                sweep::formatParamValue(row.params[0]).c_str(), row.value,
                row.batched ? "yes" : "no");
  }

  // Bit-identical cross-check against the hand-rolled loop this sweep
  // replaces: fresh build, one independent transient propagation per T.
  const auto build = dtmc::buildExplicit(*model);
  const mc::Checker checker(build.dtmc, *model);
  const double maxDiff = bench::sweepVsHandRolledMaxDiff(table, checker);
  const bool identical = maxDiff == 0.0;
  std::printf("\nSweep vs hand-rolled loop: max|diff| = %.3g "
              "(bit-identical: %s)\n",
              maxDiff, identical ? "yes" : "NO");

  // Plan-stat guard: the 8 coalesced horizons must ride one shared sweep.
  // A silent regression to per-horizon cost would keep the values correct
  // but zero these counters — fail loudly instead.
  const bool planOk = rows.size() < 2 || rows.front().plan.traversalsSaved > 0;
  std::printf("Plan stats: tasks=%llu deduped=%llu traversals_saved=%llu "
              "(batching active: %s)\n",
              static_cast<unsigned long long>(rows.front().plan.tasksPlanned),
              static_cast<unsigned long long>(rows.front().plan.tasksDeduped),
              static_cast<unsigned long long>(
                  rows.front().plan.traversalsSaved),
              planOk ? "yes" : "NO");

  const auto built = engine.ensureBuilt(*model);
  const auto reward = built->dtmc.evalReward(*model, "");
  const auto detection =
      mc::detectRewardSteadyState(built->dtmc, reward, 1e-10, 16, 5000);
  std::printf("Steady state detected at T=%llu (P2 -> %.6g): %s\n",
              static_cast<unsigned long long>(detection.step),
              detection.value, detection.converged ? "yes" : "NO");
  const double drift = rows.back().value - rows[5].value;
  std::printf("Shape check: |P2(1000) - P2(300)| = %.2e (< 1e-2: %s)\n",
              drift < 0 ? -drift : drift,
              (drift < 1e-2 && drift > -1e-2) ? "yes" : "NO");

  if (csvPath != nullptr) {
    std::ofstream out(csvPath);
    table.writeCsv(out);
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "failed to write sweep CSV to %s\n", csvPath);
      return 3;
    }
    std::printf("\nSweep CSV written to %s (%zu rows)\n", csvPath,
                table.size());
  }
  if (tracePath != nullptr) {
    if (!obs::TraceWriter(obs::Tracer::global()).writeFile(tracePath)) {
      std::fprintf(stderr, "failed to write trace JSON to %s\n", tracePath);
      return 3;
    }
    std::printf("Trace JSON written to %s (%zu spans)\n", tracePath,
                obs::Tracer::global().events().size());
  }
  return identical && planOk && table.ok() ? 0 : 1;
}
