// Table III reproduction: P2 for the Viterbi decoder as a function of T,
// demonstrating steady state (paper, RI=263):
//   T=100: 0.2373, T=300: 0.2394, T=600: 0.2397, T=1000: 0.2398.
// The shape to verify: the value stabilises for T >> RI, so the
// steady-state P2 can be read off as the BER.
//
// All horizons are one engine request: they share a single 1000-step
// transient sweep instead of one propagation per row.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "mc/transient.hpp"
#include "viterbi/model_reduced.hpp"

int main() {
  using namespace mimostat;

  std::printf("=== Table III: P2 for the Viterbi decoder vs T ===\n");
  std::printf("(paper: 0.2373 / 0.2394 / 0.2397 / 0.2398, RI=263)\n\n");

  viterbi::ViterbiParams params;  // L=6, SNR 5 dB
  const viterbi::ReducedViterbiModel model(params);

  // Our documented quantizer widths give a much shorter mixing time than
  // the authors' (steady by T~60 vs their T~300); the small-T rows expose
  // the same transient shape their Table III shows between T=100 and 1000.
  const std::vector<std::uint64_t> horizons{5, 10, 25, 50, 100, 300, 600, 1000};

  engine::AnalysisEngine engine;
  engine::AnalysisRequest request;
  request.model = &model;
  for (const auto horizon : horizons) {
    request.properties.push_back("R=? [ I=" + std::to_string(horizon) + " ]");
  }
  const engine::AnalysisResponse response = engine.analyze(request);

  std::printf("Model: %llu states, %llu transitions, RI=%u, built in %.2fs "
              "(batched sweep: %.3fs total)\n\n",
              static_cast<unsigned long long>(response.states),
              static_cast<unsigned long long>(response.transitions),
              response.reachabilityIterations, response.buildSeconds,
              response.results.back().checkSeconds);

  std::printf("%-8s %-14s %-10s\n", "T", "P2", "batched");
  for (std::size_t i = 0; i < response.results.size(); ++i) {
    std::printf("%-8llu %-14.6g %-10s\n",
                static_cast<unsigned long long>(horizons[i]),
                response.results[i].value,
                response.results[i].batched ? "yes" : "no");
  }

  const auto built = engine.ensureBuilt(model);
  const auto reward = built->dtmc.evalReward(model, "");
  const auto detection =
      mc::detectRewardSteadyState(built->dtmc, reward, 1e-10, 16, 5000);
  std::printf("\nSteady state detected at T=%llu (P2 -> %.6g): %s\n",
              static_cast<unsigned long long>(detection.step),
              detection.value, detection.converged ? "yes" : "NO");
  const double drift =
      response.results.back().value - response.results[5].value;
  std::printf("Shape check: |P2(1000) - P2(300)| = %.2e (< 1e-2: %s)\n",
              drift < 0 ? -drift : drift,
              (drift < 1e-2 && drift > -1e-2) ? "yes" : "NO");
  return 0;
}
