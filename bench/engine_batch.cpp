// Batched horizon sweeps vs per-call checking.
//
// The paper's Tables III/IV sweep R=?[I=T] over many horizons of one model;
// Figure 2 sweeps fifteen nc<L> rewards at one horizon. Per-call checking
// re-propagates the distribution from pi_0 for every property (sum of all
// horizons matrix-vector passes); the engine's batcher advances ONE sweep to
// the maximum horizon. Expected speedups: sum(T)/max(T) for a horizon sweep
// (~5.5x for T=100..1000) and #rewards for a reward-family sweep (~15x).
#include <cstdio>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "engine/engine.hpp"
#include "mc/checker.hpp"
#include "util/timer.hpp"
#include "viterbi/model_convergence.hpp"
#include "viterbi/model_reduced.hpp"

namespace {

using namespace mimostat;

struct SweepResult {
  double perCallSeconds = 0.0;
  double batchedSeconds = 0.0;
  double maxAbsDiff = 0.0;
};

SweepResult compareSweep(const dtmc::Model& model,
                         const std::vector<std::string>& properties) {
  SweepResult result;

  // Per-call baseline: one independent check per property on a prebuilt
  // model (the seed PerformanceAnalyzer behavior).
  const auto build = dtmc::buildExplicit(model);
  const mc::Checker checker(build.dtmc, model);
  std::vector<double> perCall;
  perCall.reserve(properties.size());
  {
    const util::Stopwatch timer;
    for (const auto& property : properties) {
      perCall.push_back(checker.check(property).value);
    }
    result.perCallSeconds = timer.elapsedSeconds();
  }

  // Batched: one engine request, one shared transient sweep. Warm the model
  // cache first so the measured time is checking only.
  engine::AnalysisEngine engine;
  const auto built = engine.ensureBuilt(model);
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = properties;
  request.options.modelKey = built->signature;
  {
    const util::Stopwatch timer;
    const auto response = engine.analyze(request);
    result.batchedSeconds = timer.elapsedSeconds();
    for (std::size_t i = 0; i < properties.size(); ++i) {
      const double diff = response.results[i].value - perCall[i];
      result.maxAbsDiff = std::max(result.maxAbsDiff, diff < 0 ? -diff : diff);
    }
  }
  return result;
}

void report(const char* title, const SweepResult& result) {
  std::printf("%-34s per-call %8.3fs   batched %8.3fs   speedup %5.1fx   "
              "max|diff| %.1e\n",
              title, result.perCallSeconds, result.batchedSeconds,
              result.perCallSeconds / result.batchedSeconds,
              result.maxAbsDiff);
}

}  // namespace

int main() {
  std::printf("=== Engine horizon batching vs per-call checks ===\n\n");

  // Table III-style: P2 of the L=6 Viterbi decoder at T=100..1000.
  {
    viterbi::ViterbiParams params;  // L=6, SNR 5 dB
    const viterbi::ReducedViterbiModel model(params);
    std::vector<std::string> properties;
    for (std::uint64_t horizon = 100; horizon <= 1000; horizon += 100) {
      properties.push_back("R=? [ I=" + std::to_string(horizon) + " ]");
    }
    report("Table III sweep (T=100..1000):", compareSweep(model, properties));
  }

  // Table IV-style: C1 of the convergence model at T=100..1000.
  {
    viterbi::ViterbiParams params;
    params.tracebackLength = 8;
    params.snrDb = 8.0;
    const viterbi::ConvergenceViterbiModel model(params, 12);
    std::vector<std::string> properties;
    for (std::uint64_t horizon = 100; horizon <= 1000; horizon += 100) {
      properties.push_back("R=? [ I=" + std::to_string(horizon) + " ]");
    }
    report("Table IV sweep (T=100..1000):", compareSweep(model, properties));
  }

  // Figure 2-style: fifteen nc<L> rewards at one horizon (one sweep serves
  // every reward structure).
  {
    viterbi::ViterbiParams params;
    params.snrDb = 8.0;
    const viterbi::ConvergenceViterbiModel model(params, 18);
    std::vector<std::string> properties;
    for (int L = 2; L <= 16; ++L) {
      properties.push_back("R{\"nc" + std::to_string(L) + "\"}=? [ I=500 ]");
    }
    report("Figure 2 sweep (nc2..nc16, I=500):",
           compareSweep(model, properties));
  }

  return 0;
}
