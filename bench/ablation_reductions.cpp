// Ablation study of the design choices DESIGN.md calls out:
//   1. Hand (domain-specific) reduction vs generic bisimulation lumping vs
//      no reduction, on the Viterbi error model.
//   2. Probability-floor (PRISM's 1e-15 discard) effect on model size.
//   3. Hash-set vs BDD state-set storage for reachability.
// Shapes: the hand reduction dominates the full model; generic lumping on
// top of the hand reduction finds little extra (the hand abstraction is
// near-optimal for the property); the BDD set trades time for memory.
#include <cstdio>

#include "bdd/stateset.hpp"
#include "dtmc/builder.hpp"
#include "lump/bisim.hpp"
#include "mc/checker.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"
#include "viterbi/model_full.hpp"
#include "viterbi/model_reduced.hpp"

int main() {
  using namespace mimostat;

  std::printf("=== Ablation 1: reduction strategies (Viterbi, L=4) ===\n\n");
  viterbi::ViterbiParams params;
  params.tracebackLength = 4;  // keeps the *full* model buildable

  const viterbi::FullViterbiModel fullModel(params);
  const viterbi::ReducedViterbiModel reducedModel(params);

  util::Stopwatch fullTimer;
  const auto full = dtmc::buildExplicit(fullModel);
  const double fullBuild = fullTimer.elapsedSeconds();
  const mc::Checker fullChecker(full.dtmc, fullModel);
  util::Stopwatch fullCheckTimer;
  const double fullP2 = fullChecker.check("R=? [ I=100 ]").value;
  const double fullCheck = fullCheckTimer.elapsedSeconds();

  util::Stopwatch reducedTimer;
  const auto reduced = dtmc::buildExplicit(reducedModel);
  const double reducedBuild = reducedTimer.elapsedSeconds();
  const mc::Checker reducedChecker(reduced.dtmc, reducedModel);
  util::Stopwatch reducedCheckTimer;
  const double reducedP2 = reducedChecker.check("R=? [ I=100 ]").value;
  const double reducedCheck = reducedCheckTimer.elapsedSeconds();

  // Generic lumping on the full model, keyed by the reward (flag).
  util::Stopwatch lumpTimer;
  const auto reward = full.dtmc.evalReward(fullModel, "");
  const auto lumped =
      lump::lump(full.dtmc, lump::keysFromRewardAndLabels(reward, {}));
  const double lumpSeconds = lumpTimer.elapsedSeconds();

  std::printf("%-28s %10s %12s %12s %14s\n", "Strategy", "States",
              "build(s)", "check(s)", "P2(T=100)");
  std::printf("%-28s %10u %12.2f %12.3f %14.8f\n", "none (full model M)",
              full.dtmc.numStates(), fullBuild, fullCheck, fullP2);
  std::printf("%-28s %10u %12.2f %12.3f %14.8f\n", "hand reduction (M_R)",
              reduced.dtmc.numStates(), reducedBuild, reducedCheck, reducedP2);
  std::printf("%-28s %10u %12.2f %12s %14s\n", "generic lumping of M",
              lumped.partition.numBlocks, lumpSeconds, "-", "-");
  std::printf("\nP2 preserved by hand reduction: %s (|diff| = %.2e)\n",
              std::abs(fullP2 - reducedP2) < 1e-10 ? "yes" : "NO",
              std::abs(fullP2 - reducedP2));
  std::printf("Generic lumping vs hand reduction block count: %u vs %u\n",
              lumped.partition.numBlocks, reduced.dtmc.numStates());

  std::printf("\n=== Ablation 2: probability floor (PRISM 1e-15 discard) "
              "===\n\n");
  for (const double floor : {0.0, 1e-15, 1e-9, 1e-6}) {
    dtmc::BuildOptions options;
    options.probFloor = floor;
    const auto result = dtmc::buildExplicit(reducedModel, options);
    const mc::Checker checker(result.dtmc, reducedModel);
    std::printf("  floor=%-8.0e states=%-8u transitions=%-9llu "
                "P2(T=100)=%.8f\n",
                floor, result.dtmc.numStates(),
                static_cast<unsigned long long>(result.dtmc.numTransitions()),
                checker.check("R=? [ I=100 ]").value);
  }

  std::printf("\n=== Ablation 3: hash-set vs BDD state storage ===\n\n");
  {
    const auto layout = reducedModel.layout();
    const auto count = dtmc::countReachable(reducedModel);
    // Replay reachability into both set implementations.
    const auto built = dtmc::buildExplicit(reducedModel);
    util::Stopwatch hashTimer;
    util::PackedStateSet hashSet;
    for (const auto& s : built.dtmc.states()) hashSet.insert(layout.pack(s));
    const double hashSeconds = hashTimer.elapsedSeconds();

    util::Stopwatch bddTimer;
    bdd::BddStateSet bddSet(static_cast<std::uint32_t>(layout.totalBits()));
    for (const auto& s : built.dtmc.states()) bddSet.insert(layout.pack(s));
    const double bddSeconds = bddTimer.elapsedSeconds();

    std::printf("  states=%llu\n",
                static_cast<unsigned long long>(count.numStates));
    std::printf("  hash set: %.4fs, %zu slots x 8B = %zu KB\n", hashSeconds,
                hashSet.capacity(), hashSet.capacity() * 8 / 1024);
    std::printf("  BDD set:  %.4fs, %zu nodes x 12B = %zu KB\n", bddSeconds,
                bddSet.nodeCount(), bddSet.nodeCount() * 12 / 1024);
    std::printf("  sizes agree: %s\n",
                bddSet.size() == static_cast<double>(hashSet.size()) ? "yes"
                                                                     : "NO");
  }
  return 0;
}
