// bench_bounded_batch — per-formula vs planned/batched bounded-PCTL
// evaluation.
//
// k bounded-path formulas (F<=T at spread targets, with repeated bodies at
// two thresholds every fourth formula) are checked against one random
// chain two ways:
//
//   1. per-formula: the verbatim pre-refactor mc::bounded backward loop,
//      one full matrix traversal per step per formula (sum of bounds
//      traversals in total);
//   2. planned/batched: one engine request — pctl::buildPlan compiles the
//      set into columns of ONE masked SpMM traversal (la::spmmMasked), so
//      the whole group costs max(bounds) traversals (~1 per step instead
//      of k).
//
// Values are asserted bitwise identical (max|diff| EXACTLY 0.0 — the la::
// contract is bit-identity, not tolerance) and the engine's plan stats are
// asserted to match the arithmetic (traversalsSaved == sum - max, and the
// packed la::BitVector mask table at least 4x under its byte-per-state
// equivalent — ~8x in practice); the process exits 1 on any violation
// (this is the ctest smoke). `--csv <path>` writes the measurements for
// the CI artifact.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "dtmc/model.hpp"
#include "engine/engine.hpp"
#include "mc/bounded.hpp"
#include "util/hash.hpp"
#include "util/timer.hpp"

namespace {

using namespace mimostat;

struct Config {
  std::uint32_t states = 60'000;
  std::uint32_t fanout = 6;
  std::uint64_t steps = 40;   // largest bound
  std::size_t maxK = 16;
  const char* csvPath = nullptr;
};

/// Random sparse chain as a dtmc::Model: variable "s" in [0, n), each state
/// hops to s+1 (connectivity) plus fanout-1 hash-derived targets.
/// transitions() is a pure function of the state, as the builder requires.
class RandomChainModel : public dtmc::Model {
 public:
  RandomChainModel(std::uint32_t n, std::uint32_t fanout)
      : n_(n), fanout_(fanout) {}

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override {
    return {{"s", 0, static_cast<std::int32_t>(n_) - 1}};
  }
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override {
    return {dtmc::State{0}};
  }
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override {
    const auto u = static_cast<std::uint32_t>(s[0]);
    double total = 0.0;
    std::vector<std::pair<std::uint32_t, double>> row;
    for (std::uint32_t k = 0; k < fanout_; ++k) {
      const std::uint64_t h =
          util::mix64((static_cast<std::uint64_t>(u) << 20) | k);
      const std::uint32_t target =
          k == 0 ? (u + 1) % n_ : static_cast<std::uint32_t>(h % n_);
      const double w = 0.05 + static_cast<double>(h >> 40) / (1 << 24);
      row.emplace_back(target, w);
      total += w;
    }
    for (const auto& [target, w] : row) {
      out.push_back({w / total, dtmc::State{static_cast<std::int32_t>(target)}});
    }
  }

 private:
  std::uint32_t n_;
  std::uint32_t fanout_;
};

/// The pre-refactor mc::boundedUntil private loop (phi = true), verbatim —
/// the per-formula reference the planned path must reproduce bit for bit.
std::vector<double> legacyBoundedFinally(const dtmc::ExplicitDtmc& dtmc,
                                         const std::vector<std::uint8_t>& psi,
                                         std::uint64_t bound) {
  const std::uint32_t n = dtmc.numStates();
  std::vector<double> x(n);
  for (std::uint32_t s = 0; s < n; ++s) x[s] = psi[s] ? 1.0 : 0.0;
  std::vector<double> next(n);
  for (std::uint64_t j = 0; j < bound; ++j) {
    for (std::uint32_t s = 0; s < n; ++s) {
      if (psi[s]) {
        next[s] = 1.0;
      } else {
        double acc = 0.0;
        for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1];
             ++k) {
          acc += dtmc.val()[k] * x[dtmc.col()[k]];
        }
        next[s] = acc;
      }
    }
    x.swap(next);
  }
  return x;
}

struct FormulaSpec {
  std::int32_t target = 0;
  std::uint64_t bound = 0;
};

/// k formulas: spread targets; every fourth repeats the previous body at a
/// shorter threshold, so the plan's column dedup is exercised too.
std::vector<FormulaSpec> makeFormulas(const Config& config, std::size_t k) {
  std::vector<FormulaSpec> specs;
  for (std::size_t j = 0; j < k; ++j) {
    FormulaSpec spec;
    if (j % 4 == 3 && j > 0) {
      spec.target = specs[j - 1].target;  // shared body, new threshold
      spec.bound = std::max<std::uint64_t>(1, specs[j - 1].bound / 2);
    } else {
      spec.target = static_cast<std::int32_t>(
          (config.states / (k + 1)) * (j + 1));
      spec.bound = config.steps - (j % 4) * (config.steps / 8);
    }
    specs.push_back(spec);
  }
  return specs;
}

struct Row {
  std::size_t k = 0;
  double perFormulaSeconds = 0.0;
  double batchedSeconds = 0.0;
  std::uint64_t traversalsSaved = 0;
  std::uint64_t perFormulaTraversals = 0;
  std::uint64_t batchedTraversals = 0;
  /// Plan mask-table footprint: packed la::BitVector words vs what the
  /// legacy byte-per-state masks would have held (~8x more).
  std::uint64_t maskBytesPacked = 0;
  std::uint64_t maskBytesByte = 0;
  double maxDiff = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const auto intArg = [&](const char* flag, auto& out) {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        out = static_cast<std::remove_reference_t<decltype(out)>>(
            std::strtoull(argv[++i], nullptr, 10));
        return true;
      }
      return false;
    };
    if (intArg("--states", config.states) ||
        intArg("--fanout", config.fanout) || intArg("--steps", config.steps) ||
        intArg("--kmax", config.maxK)) {
      continue;
    }
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      config.csvPath = argv[++i];
      continue;
    }
    std::fprintf(stderr,
                 "usage: bench_bounded_batch [--states N] [--fanout F] "
                 "[--steps T] [--kmax K] [--csv path]\n");
    return 2;
  }

  std::printf("=== bench_bounded_batch: per-formula vs planned/batched "
              "bounded PCTL ===\n");
  const RandomChainModel model(config.states, config.fanout);
  engine::AnalysisEngine engine;
  const auto built = engine.ensureBuilt(model);
  const dtmc::ExplicitDtmc& d = built->dtmc;
  std::printf("chain: %u states, %llu transitions, bounds up to %llu\n",
              d.numStates(),
              static_cast<unsigned long long>(d.numTransitions()),
              static_cast<unsigned long long>(config.steps));
  std::printf("(single-core hosts mostly demonstrate the bit-identity and\n"
              " traversal-count contract; the wall-clock win needs the\n"
              " matrix out of cache or a multi-core pool)\n\n");

  const auto varIdx = d.varLayout().indexOf("s");
  std::vector<Row> rows;
  bool allExact = true;
  bool statsOk = true;

  std::printf("%-4s %-16s %-16s %-9s %-22s %-20s %-10s\n", "k",
              "per-formula(s)", "batched(s)", "speedup",
              "traversals (sum->max)", "mask bytes (byte->bv)", "max|diff|");
  for (std::size_t k = 1; k <= config.maxK; k *= 2) {
    const std::vector<FormulaSpec> specs = makeFormulas(config, k);
    Row row;
    row.k = k;

    // --- per-formula: the legacy loop, one traversal per step per formula.
    std::vector<double> perFormula;
    {
      const util::Stopwatch timer;
      for (const FormulaSpec& spec : specs) {
        std::vector<std::uint8_t> psi(d.numStates(), 0);
        for (std::uint32_t s = 0; s < d.numStates(); ++s) {
          psi[s] = d.varValue(s, varIdx) == spec.target;
        }
        perFormula.push_back(
            mc::fromInitial(d, legacyBoundedFinally(d, psi, spec.bound)));
        row.perFormulaTraversals += spec.bound;
      }
      row.perFormulaSeconds = timer.elapsedSeconds();
    }

    // --- planned/batched: one engine request, one masked traversal. The
    // echoed model key skips the structural probe so the timing isolates
    // property evaluation, not model hashing.
    engine::AnalysisRequest request;
    request.model = &model;
    request.options.modelKey = built->signature;
    for (const FormulaSpec& spec : specs) {
      request.properties.push_back("P=? [ F<=" + std::to_string(spec.bound) +
                                   " s=" + std::to_string(spec.target) + " ]");
    }
    const util::Stopwatch timer;
    const engine::AnalysisResponse response = engine.analyze(request);
    row.batchedSeconds = timer.elapsedSeconds();
    if (!response.ok()) {
      std::fprintf(stderr, "request failed: %s\n",
                   response.results.empty()
                       ? response.error.c_str()
                       : response.results[0].error.c_str());
      return 1;
    }

    std::uint64_t maxBound = 0;
    for (const FormulaSpec& spec : specs) {
      maxBound = std::max(maxBound, spec.bound);
    }
    row.batchedTraversals = maxBound;
    row.traversalsSaved = response.plan.traversalsSaved;
    statsOk = statsOk &&
              row.traversalsSaved == row.perFormulaTraversals - maxBound;

    // Mask memory: the plan's interned target sets live as packed
    // BitVectors; the byte-per-state representation they replaced is ~8x
    // larger (exactly n bytes vs ceil(n/64) words per mask).
    row.maskBytesPacked = response.plan.maskBytesPacked;
    row.maskBytesByte = response.plan.maskBytesByte;
    statsOk = statsOk && row.maskBytesPacked > 0 &&
              row.maskBytesPacked * 4 <= row.maskBytesByte;

    for (std::size_t j = 0; j < k; ++j) {
      const double diff = response.results[j].value > perFormula[j]
                              ? response.results[j].value - perFormula[j]
                              : perFormula[j] - response.results[j].value;
      row.maxDiff = std::max(row.maxDiff, diff);
    }
    allExact = allExact && row.maxDiff == 0.0;

    std::printf("%-4zu %-16.3f %-16.3f %-9.2f %8llu -> %-11llu "
                "%8llu -> %-9llu %-10g\n",
                k, row.perFormulaSeconds, row.batchedSeconds,
                row.perFormulaSeconds / row.batchedSeconds,
                static_cast<unsigned long long>(row.perFormulaTraversals),
                static_cast<unsigned long long>(row.batchedTraversals),
                static_cast<unsigned long long>(row.maskBytesByte),
                static_cast<unsigned long long>(row.maskBytesPacked),
                row.maxDiff);
    rows.push_back(row);
  }

  if (config.csvPath != nullptr) {
    std::ofstream csv(config.csvPath);
    csv << "k,states,nnz,max_steps,per_formula_seconds,batched_seconds,"
           "batched_seconds_per_step,speedup,per_formula_traversals,"
           "batched_traversals,traversals_saved,mask_bytes_byte,"
           "mask_bytes_packed,max_abs_diff\n";
    for (const Row& row : rows) {
      csv << row.k << ',' << d.numStates() << ',' << d.numTransitions() << ','
          << config.steps << ',' << row.perFormulaSeconds << ','
          << row.batchedSeconds << ','
          << row.batchedSeconds / static_cast<double>(row.batchedTraversals)
          << ',' << row.perFormulaSeconds / row.batchedSeconds << ','
          << row.perFormulaTraversals << ',' << row.batchedTraversals << ','
          << row.traversalsSaved << ',' << row.maskBytesByte << ','
          << row.maskBytesPacked << ',' << row.maxDiff << '\n';
    }
    std::printf("\nwrote %s\n", config.csvPath);
  }

  if (!allExact) {
    std::printf("\nFAIL: planned/batched evaluation diverged from the "
                "per-formula loops\n");
    return 1;
  }
  if (!statsOk) {
    std::printf("\nFAIL: plan stats disagree with the traversal or "
                "mask-byte arithmetic\n");
    return 1;
  }
  std::printf("\nOK: batched bounded evaluation bit-identical to the "
              "per-formula loops (one traversal per step instead of k)\n");
  return 0;
}
