// Table II reproduction: symmetry reduction of the MIMO ML detector.
//
// Paper:
//   1x2 (SNR  8 dB): 569,480 -> 32,088 states, factor 18
//   1x4 (SNR 12 dB): 524,288 ->  1,320 states, factor 400
//
// Our quantizer widths (documented in DESIGN.md) are chosen so the factors
// land in the same regime: the 2*Nr interchangeable metric blocks give a
// combinatorial reduction that grows steeply with Nr.
#include <cstdio>

#include "dtmc/builder.hpp"
#include "lump/symmetry.hpp"
#include "mimo/model.hpp"
#include "util/timer.hpp"

namespace {

void runCase(const char* name, const mimostat::mimo::MimoParams& params) {
  using namespace mimostat;

  const mimo::MimoDetectorModel model(params);
  const lump::SymmetryReducedModel reduced(model, model.symmetryBlocks());

  util::Stopwatch fullTimer;
  const auto full = dtmc::buildExplicit(model);
  const double fullSeconds = fullTimer.elapsedSeconds();

  util::Stopwatch reducedTimer;
  const auto quotient = dtmc::buildExplicit(reduced);
  const double reducedSeconds = reducedTimer.elapsedSeconds();

  const bool symmetric = reduced.verifySymmetry({"error"}, 200, 42);

  const double factor = static_cast<double>(full.dtmc.numStates()) /
                        quotient.dtmc.numStates();
  std::printf("%-4s %14u %16u %10.0f %10.2f %10.2f  symmetry:%s\n", name,
              full.dtmc.numStates(), quotient.dtmc.numStates(), factor,
              fullSeconds, reducedSeconds, symmetric ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  std::printf("=== Table II: Symmetry reduction of MIMO detector ===\n");
  std::printf("(paper: 1x2 569480->32088 factor 18; "
              "1x4 524288->1320 factor 400)\n\n");
  std::printf("%-4s %14s %16s %10s %10s %10s\n", "MIMO", "States (M)",
              "States (M_R)", "Factor", "t_M (s)", "t_MR (s)");
  runCase("1x2", mimostat::mimo::mimo1x2Params());
  runCase("1x4", mimostat::mimo::mimo1x4Params());
  return 0;
}
