// Figure 2 reproduction: C1 (probability of non-converging traceback
// paths) as a function of the traceback length L. The paper's claims:
// C1 decreases with L and stabilises past L = 5m (m=1 here), empirically
// justifying the folklore L = 4m..5m traceback-depth rule.
//
// The L study is a declarative sweep::SweepSpec: one axis L, one shared
// deep-counter model whose "nc<k>" reward structures answer every L, one
// property per point. The runner coalesces all points into one engine
// request — a single transient pass to the common horizon — asserted
// bit-identical to the hand-rolled per-L checker loop this bench used to
// be.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "sweep/runner.hpp"
#include "sweep_reference.hpp"
#include "viterbi/model_convergence.hpp"

int main() {
  using namespace mimostat;

  std::printf("=== Figure 2: C1 as a function of L ===\n");
  std::printf("(paper: decreasing, stabilising past L=5m; SNR 8dB)\n\n");

  viterbi::ViterbiParams params;
  params.snrDb = 8.0;
  params.tracebackLength = 8;  // default reward's L; nc<k> covers the sweep
  const int maxL = 14;
  const auto model = std::make_shared<viterbi::ConvergenceViterbiModel>(
      params, maxL + 2);

  sweep::SweepSpec spec("fig2");
  spec.space.cross(sweep::Axis::ints("L", 2, maxL));
  spec.share(model);
  spec.properties = [](const sweep::Params& p) {
    return std::vector<std::string>{
        "R{\"nc" + std::to_string(p.getInt("L")) + "\"}=? [ I=400 ]"};
  };

  engine::AnalysisEngine engine;
  const sweep::Runner runner(engine);
  const sweep::ResultTable table = runner.run(spec);
  const auto& rows = table.rows();

  std::printf("Model: %llu states, built once for %zu points (one batched "
              "sweep: %s)\n\n",
              static_cast<unsigned long long>(rows.front().states),
              rows.size(), rows.front().batched ? "yes" : "no");
  std::printf("%-6s %-14s %-14s\n", "L", "C1", "C1(L)/C1(L+1)");

  std::vector<double> series;
  series.reserve(rows.size());
  for (const auto& row : rows) series.push_back(row.value);
  for (int L = 2; L <= maxL; ++L) {
    const double c1 = series[static_cast<std::size_t>(L - 2)];
    const double ratio = (L < maxL && series[static_cast<std::size_t>(L - 1)] > 0)
                             ? c1 / series[static_cast<std::size_t>(L - 1)]
                             : 0.0;
    std::printf("%-6d %-14.6e %-14.3f\n", L, c1, ratio);
  }

  // Bit-identical cross-check against the hand-rolled loop this sweep
  // replaces: fresh build, one independent checker call per L.
  const auto build = dtmc::buildExplicit(*model);
  const mc::Checker checker(build.dtmc, *model);
  const double maxDiff = bench::sweepVsHandRolledMaxDiff(table, checker);
  const bool identical = maxDiff == 0.0;
  std::printf("\nSweep vs hand-rolled loop: max|diff| = %.3g "
              "(bit-identical: %s)\n",
              maxDiff, identical ? "yes" : "NO");

  bool monotone = true;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i] > series[i - 1] + 1e-15) monotone = false;
  }
  std::printf("Shape check: monotone decreasing in L: %s\n",
              monotone ? "yes" : "NO");
  // "Stabilises" in the paper's sense: the *decision* cost of raising L past
  // 5m is marginal because C1 is already tiny (geometric decay).
  const double atFiveM = series[3];  // L=5 (m=1)
  std::printf("C1 at L=5m is already %.2e (< 1e-2: %s)\n", atFiveM,
              atFiveM < 1e-2 ? "yes" : "NO");
  return identical && table.ok() ? 0 : 1;
}
