// Figure 2 reproduction: C1 (probability of non-converging traceback
// paths) as a function of the traceback length L. The paper's claims:
// C1 decreases with L and stabilises past L = 5m (m=1 here), empirically
// justifying the folklore L = 4m..5m traceback-depth rule.
//
// One model with a deep saturating counter answers every L through the
// "nc<k>" reward structures — a single transient pass per horizon.
#include <cstdio>

#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "viterbi/model_convergence.hpp"

int main() {
  using namespace mimostat;

  std::printf("=== Figure 2: C1 as a function of L ===\n");
  std::printf("(paper: decreasing, stabilising past L=5m; SNR 8dB)\n\n");

  viterbi::ViterbiParams params;
  params.snrDb = 8.0;
  params.tracebackLength = 8;  // default reward's L; nc<k> covers the sweep
  const int maxL = 14;
  const viterbi::ConvergenceViterbiModel model(params, maxL + 2);
  const auto build = dtmc::buildExplicit(model);
  const mc::Checker checker(build.dtmc, model);

  std::printf("Model: %u states, RI=%u\n\n", build.dtmc.numStates(),
              build.reachabilityIterations);
  std::printf("%-6s %-14s %-14s\n", "L", "C1", "C1(L)/C1(L+1)");

  std::vector<double> series;
  for (int L = 2; L <= maxL; ++L) {
    const std::string prop = "R{\"nc" + std::to_string(L) + "\"}=? [ I=400 ]";
    series.push_back(checker.check(prop).value);
  }
  for (int L = 2; L <= maxL; ++L) {
    const double c1 = series[static_cast<std::size_t>(L - 2)];
    const double ratio = (L < maxL && series[static_cast<std::size_t>(L - 1)] > 0)
                             ? c1 / series[static_cast<std::size_t>(L - 1)]
                             : 0.0;
    std::printf("%-6d %-14.6e %-14.3f\n", L, c1, ratio);
  }

  bool monotone = true;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i] > series[i - 1] + 1e-15) monotone = false;
  }
  std::printf("\nShape check: monotone decreasing in L: %s\n",
              monotone ? "yes" : "NO");
  // "Stabilises" in the paper's sense: the *decision* cost of raising L past
  // 5m is marginal because C1 is already tiny (geometric decay).
  const double atFiveM = series[3];  // L=5 (m=1)
  std::printf("C1 at L=5m is already %.2e (< 1e-2: %s)\n", atFiveM,
              atFiveM < 1e-2 ? "yes" : "NO");
  return 0;
}
