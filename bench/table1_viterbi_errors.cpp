// Table I reproduction: error properties P1/P2/P3 for the Viterbi decoder
// at SNR 5 dB, L=6, T=300.
//
// Paper (on the authors' 3 GHz machine, with their undocumented quantizer
// widths):
//   P1: 53,558,744 -> 8,505,363 states,  90.80 s, 3e-15
//   P2: 53,558,744 -> 8,505,363 states, 184.13 s, 0.2394
//   P3: 107,504,890 -> 16,435,490 states, 365.68 s, ~1
//
// We report our own state counts (documented 2-bit quantizer, pmCap=6).
// The original-model column is obtained by a memory-lean packed-state BFS;
// the properties are checked on the reduced (bisimilar) model, exactly as
// the paper does. The shape to verify: P1 is astronomically small, P2 is a
// few tenths (poor SNR), P3 is ~1, and the reduction shrinks the model by
// a large factor while preserving the values.
#include <cstdio>

#include "core/analyzer.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "dtmc/builder.hpp"
#include "util/timer.hpp"
#include "viterbi/fabs.hpp"
#include "viterbi/model_full.hpp"
#include "viterbi/model_reduced.hpp"

int main() {
  using namespace mimostat;

  std::printf("=== Table I: Error properties for a Viterbi decoder ===\n");
  std::printf("SNR=5dB, L=6, T=300 (paper values: P1=3e-15, P2=0.2394, "
              "P3~1)\n\n");

  viterbi::ViterbiParams params;  // paper defaults: L=6, SNR 5 dB

  // Equivalence of the two flag functions (Formality substitute).
  const auto equivalence =
      viterbi::verifyFlagEquivalence(params.tracebackLength);
  std::printf("Eq.5 == Eq.9 equivalence check: %s (%llu assignments)\n",
              equivalence.equivalent ? "PASS" : "FAIL",
              static_cast<unsigned long long>(equivalence.assignmentsChecked));

  // Original-model state counts via packed BFS (no matrix materialised).
  std::printf("\nCounting original model M (packed-state BFS)...\n");
  const viterbi::FullViterbiModel fullP12(params);
  const auto countP12 = dtmc::countReachable(fullP12);

  auto paramsP3 = params;
  paramsP3.withErrorCounter = true;
  const viterbi::FullViterbiModel fullP3(paramsP3);
  const auto countP3 = dtmc::countReachable(fullP3);

  std::printf("  M (P1/P2): %llu states, %llu transitions, RI=%u, %.2fs\n",
              static_cast<unsigned long long>(countP12.numStates),
              static_cast<unsigned long long>(countP12.numTransitions),
              countP12.reachabilityIterations, countP12.buildSeconds);
  std::printf("  M (P3):    %llu states, %llu transitions, RI=%u, %.2fs\n",
              static_cast<unsigned long long>(countP3.numStates),
              static_cast<unsigned long long>(countP3.numTransitions),
              countP3.reachabilityIterations, countP3.buildSeconds);

  // Reduced models + property checking.
  std::printf("\nBuilding reduced model M_R and checking properties...\n");
  const viterbi::ReducedViterbiModel reducedP12(params);
  const core::PerformanceAnalyzer analyzerP12(reducedP12);

  const viterbi::ReducedViterbiModel reducedP3(paramsP3);
  const core::PerformanceAnalyzer analyzerP3(reducedP3);

  const std::uint64_t horizon = 300;
  std::vector<core::GuaranteeReport> rows;
  rows.push_back(analyzerP12.check(
      core::metricProperty(core::MetricKind::kBestCase, horizon)));
  rows.push_back(analyzerP12.check(
      core::metricProperty(core::MetricKind::kAverageCase, horizon)));
  rows.push_back(analyzerP3.check(
      core::metricProperty(core::MetricKind::kWorstCase, horizon, 1)));
  std::printf("\n%s\n", core::formatReportTable(
                            "Table I (reduced model M_R)", rows)
                            .c_str());

  const double factorP12 =
      static_cast<double>(countP12.numStates) / rows[0].states;
  const double factorP3 =
      static_cast<double>(countP3.numStates) / rows[2].states;
  std::printf("Reduction factors: P1/P2 %.1fx, P3 %.1fx\n", factorP12,
              factorP3);
  std::printf("Shape check: P1 << 1e-6 (%s), 0.05 < P2 < 0.5 (%s), "
              "P3 > 0.99 (%s)\n",
              rows[0].value < 1e-6 ? "yes" : "NO",
              rows[1].value > 0.05 && rows[1].value < 0.5 ? "yes" : "NO",
              rows[2].value > 0.99 ? "yes" : "NO");
  return 0;
}
