// Table IV reproduction: the convergence property C1 for the Viterbi
// decoder (L=8, SNR 8 dB) as a function of T (paper, RI=77):
//   T=100: 1.034e-3, T=400: ~1.04e-3, T=1000: 1.044e-3
// plus the paper's claim that C1 is checkable within ~120 s on a model of
// only ~61,000 states thanks to the projection onto (pm0, pm1, x0, count).
//
// The horizon study is a declarative sweep::SweepSpec sharing one model:
// the runner coalesces the three horizons into a single engine request
// (one transient sweep), asserted bit-identical to the hand-rolled
// per-horizon checker loop.
//
// `--trace <path>` enables the process tracer and writes the run's span
// tree as Chrome trace-event JSON (Perfetto / chrome://tracing).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "mc/steady.hpp"
#include "obs/trace.hpp"
#include "sweep/runner.hpp"
#include "sweep_reference.hpp"
#include "viterbi/model_convergence.hpp"
#include "viterbi/sim.hpp"

int main(int argc, char** argv) {
  using namespace mimostat;

  const char* tracePath = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace requires a path argument\n");
        return 2;
      }
      tracePath = argv[++i];
    }
  }
  if (tracePath != nullptr) obs::Tracer::global().setEnabled(true);

  std::printf("=== Table IV: Convergence of the Viterbi decoder (C1) ===\n");
  std::printf("(paper: ~1.03e-3..1.04e-3 across T, RI=77, L=8, SNR 8dB)\n\n");

  viterbi::ViterbiParams params;
  params.tracebackLength = 8;
  params.snrDb = 8.0;
  const auto model = std::make_shared<viterbi::ConvergenceViterbiModel>(
      params, /*maxCount=*/12);

  sweep::SweepSpec spec("table4");
  spec.space.cross(sweep::Axis::values(
      "T", {std::int64_t{100}, std::int64_t{400}, std::int64_t{1000}}));
  spec.share(model);
  spec.properties = [](const sweep::Params& p) {
    return std::vector<std::string>{"R=? [ I=" + std::to_string(p.getInt("T")) +
                                    " ]"};
  };

  engine::AnalysisEngine engine;
  const sweep::Runner runner(engine);
  const sweep::ResultTable table = runner.run(spec);
  const auto& rows = table.rows();

  std::printf("Model: %llu states, %llu transitions, built once for %zu "
              "points\n\n",
              static_cast<unsigned long long>(rows.front().states),
              static_cast<unsigned long long>(rows.front().transitions),
              rows.size());

  std::printf("%-8s %-14s %-10s\n", "T", "C1", "batched");
  for (const auto& row : rows) {
    std::printf("%-8s %-14.6g %-10s\n",
                sweep::formatParamValue(row.params[0]).c_str(), row.value,
                row.batched ? "yes" : "no");
  }

  // KNOWN GAP: our C1 magnitude (~2.1e-4) sits below the paper's ~1.0e-3.
  // The authors' quantizer wordlengths are not fully specified; ours (see
  // comm/quantizer.cpp) quantize the path metrics more finely, which makes
  // metric ties — the non-convergence trigger — rarer. The reproduced claim
  // is the *shape*: C1 is flat in T (steady state) on a ~61k-state
  // projection. Not a sweep bug; see README "Reproducing the paper".
  std::printf("\nNOTE: C1 magnitude here is ~2.1e-4 vs the paper's ~1.0e-3 "
              "(quantizer-width provenance; see README).\n");

  // Bit-identical cross-check against the hand-rolled loop this sweep
  // replaces: fresh build, one independent propagation per horizon.
  const auto build = dtmc::buildExplicit(*model);
  const mc::Checker checker(build.dtmc, *model);
  const double maxDiff = bench::sweepVsHandRolledMaxDiff(table, checker);
  const bool identical = maxDiff == 0.0;
  std::printf("Sweep vs hand-rolled loop: max|diff| = %.3g "
              "(bit-identical: %s)\n",
              maxDiff, identical ? "yes" : "NO");

  // Plan-stat guard: the 3 coalesced horizons share one transient sweep;
  // traversals_saved == 0 would mean batching silently reverted to
  // per-formula cost — fail loudly.
  const bool planOk = rows.size() < 2 || rows.front().plan.traversalsSaved > 0;
  std::printf("Plan stats: tasks=%llu deduped=%llu traversals_saved=%llu "
              "(batching active: %s)\n",
              static_cast<unsigned long long>(rows.front().plan.tasksPlanned),
              static_cast<unsigned long long>(rows.front().plan.tasksDeduped),
              static_cast<unsigned long long>(
                  rows.front().plan.traversalsSaved),
              planOk ? "yes" : "NO");

  const auto built = engine.ensureBuilt(*model);
  const auto structure = mc::analyzeStructure(built->dtmc);
  std::printf("\nChain structure: %u SCCs, %u recurrent class(es) — unique "
              "recurrent class, steady state guaranteed: %s\n",
              structure.numSccs, structure.numBottomSccs,
              structure.numBottomSccs == 1 ? "yes" : "NO");

  // Cross-check against the bit-accurate decoder simulation.
  const auto sim = viterbi::simulate(params, 2'000'000, 7);
  const auto interval = sim.nonConvergent.wilson(0.99);
  std::printf("Simulation cross-check (2e6 steps): C1_sim=%.3e "
              "[%.3e, %.3e], model inside: %s\n",
              sim.nonConvergent.estimate(), interval.low, interval.high,
              interval.contains(rows.back().value) ? "yes" : "NO");
  if (tracePath != nullptr) {
    if (!obs::TraceWriter(obs::Tracer::global()).writeFile(tracePath)) {
      std::fprintf(stderr, "failed to write trace JSON to %s\n", tracePath);
      return 3;
    }
    std::printf("Trace JSON written to %s (%zu spans)\n", tracePath,
                obs::Tracer::global().events().size());
  }
  return identical && planOk && table.ok() ? 0 : 1;
}
