// Table IV reproduction: the convergence property C1 for the Viterbi
// decoder (L=8, SNR 8 dB) as a function of T (paper, RI=77):
//   T=100: 1.034e-3, T=400: ~1.04e-3, T=1000: 1.044e-3
// plus the paper's claim that C1 is checkable within ~120 s on a model of
// only ~61,000 states thanks to the projection onto (pm0, pm1, x0, count).
//
// The three horizons are one engine request sharing one transient sweep.
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "mc/steady.hpp"
#include "viterbi/model_convergence.hpp"
#include "viterbi/sim.hpp"

int main() {
  using namespace mimostat;

  std::printf("=== Table IV: Convergence of the Viterbi decoder (C1) ===\n");
  std::printf("(paper: ~1.03e-3..1.04e-3 across T, RI=77, L=8, SNR 8dB)\n\n");

  viterbi::ViterbiParams params;
  params.tracebackLength = 8;
  params.snrDb = 8.0;
  const viterbi::ConvergenceViterbiModel model(params, /*maxCount=*/12);

  const std::vector<std::uint64_t> horizons{100, 400, 1000};
  engine::AnalysisEngine engine;
  engine::AnalysisRequest request;
  request.model = &model;
  for (const auto horizon : horizons) {
    request.properties.push_back("R=? [ I=" + std::to_string(horizon) + " ]");
  }
  const engine::AnalysisResponse response = engine.analyze(request);

  std::printf("Model: %llu states, %llu transitions, RI=%u, built in %.2fs\n\n",
              static_cast<unsigned long long>(response.states),
              static_cast<unsigned long long>(response.transitions),
              response.reachabilityIterations, response.buildSeconds);

  std::printf("%-8s %-14s %-10s\n", "T", "C1", "time(s)");
  for (std::size_t i = 0; i < response.results.size(); ++i) {
    std::printf("%-8llu %-14.6g %-10.3f\n",
                static_cast<unsigned long long>(horizons[i]),
                response.results[i].value, response.results[i].checkSeconds);
  }

  const auto built = engine.ensureBuilt(model);
  const auto structure = mc::analyzeStructure(built->dtmc);
  std::printf("\nChain structure: %u SCCs, %u recurrent class(es) — unique "
              "recurrent class, steady state guaranteed: %s\n",
              structure.numSccs, structure.numBottomSccs,
              structure.numBottomSccs == 1 ? "yes" : "NO");

  // Cross-check against the bit-accurate decoder simulation.
  const auto sim = viterbi::simulate(params, 2'000'000, 7);
  const auto interval = sim.nonConvergent.wilson(0.99);
  std::printf("Simulation cross-check (2e6 steps): C1_sim=%.3e "
              "[%.3e, %.3e], model inside: %s\n",
              sim.nonConvergent.estimate(), interval.low, interval.high,
              interval.contains(response.results.back().value) ? "yes" : "NO");
  return 0;
}
