// bench_reduce — unreduced vs plan-aware quotient vs state elimination on
// the paper's comm/ chains (the MIMO ML-detector DTMCs of Table II/V).
//
// Three configurations per workload:
//
//   1. unreduced:   one engine request (BER transient + bounded error
//                   probability) with the reduction stage forced off;
//   2. quotient:    the same request with the plan-aware bisimulation
//                   quotient forced on — the partition is seeded by the
//                   plan's needs only (atom "error" + the default reward,
//                   both functions of the sticky flag bit), so the
//                   detector's per-antenna quantizer detail merges far
//                   beyond the Table II symmetry factors. Run twice: the
//                   second request must be served from the engine's
//                   quotient cache (EngineStats::quotientHits);
//   3. elimination: mean time to first error (R=?[F error] with unit step
//                   rewards — the comm MTTFE figure) solved exactly by
//                   reduce:: state elimination on the quotient, checked
//                   against the fixed-point residual of the original
//                   equations and, when the iterative baseline converges
//                   in a sane iteration budget (it needs ~ln(1/eps)/BER
//                   iterations, hopeless at BER ~1e-5), against the
//                   unreduced iterative answer.
//
// The process exits 1 unless the contract holds on every workload:
// quotient applied with at least --min-factor state reduction, quotient
// values within 1e-9 of the unreduced reference (exact lumping, FP
// accumulation order), a second request hitting the quotient cache, and
// the elimination residual at 1e-9 relative. `--smoke` runs scaled-down
// detector configs for ctest; `--csv <path>` writes the measurements for
// the CI artifact.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "engine/engine.hpp"
#include "la/bit_vector.hpp"
#include "mc/unbounded.hpp"
#include "mimo/model.hpp"
#include "reduce/reduce.hpp"
#include "util/timer.hpp"

namespace {

using namespace mimostat;

struct Config {
  bool smoke = false;
  double minFactor = 10.0;
  std::uint64_t elimMaxStates = 50'000;
  const char* csvPath = nullptr;
};

struct Workload {
  std::string name;
  mimo::MimoParams params;
};

struct CsvRow {
  std::string workload;
  std::string config;
  std::uint64_t states = 0;
  std::uint64_t nnz = 0;
  double reduceSeconds = 0.0;
  double checkSeconds = 0.0;
  double maxAbsDiff = 0.0;
  bool cacheHit = false;
};

const std::vector<std::string> kProperties{
    "R=? [ I=8 ]",          // BER (sticky flag, any T >= 2)
    "P=? [ F<=6 error ]",   // error within the first two pipeline passes
};

/// Initial-distribution weighting of a per-state value vector.
double weightedValue(const dtmc::ExplicitDtmc& dtmc,
                     const std::vector<double>& values) {
  double acc = 0.0;
  const auto& initial = dtmc.initialDistribution();
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) {
    acc += initial[s] * values[s];
  }
  return acc;
}

/// Max-norm residual of x against the expected-reward fixed point
/// x(s) = r(s) + sum_t P(s,t) x(t) on non-psi states (psi states pin 0).
double rewardResidual(const dtmc::ExplicitDtmc& dtmc,
                      const std::vector<double>& reward,
                      const la::BitVector& psi,
                      const std::vector<double>& x) {
  double worst = 0.0;
  const auto& rowPtr = dtmc.rowPtr();
  const auto& col = dtmc.col();
  const auto& val = dtmc.val();
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) {
    if (psi.get(s)) continue;
    double acc = reward[s];
    for (std::uint64_t k = rowPtr[s]; k < rowPtr[s + 1]; ++k) {
      acc += val[k] * x[col[k]];
    }
    worst = std::max(worst, std::abs(acc - x[s]));
  }
  return worst;
}

bool runWorkload(const Workload& workload, const Config& config,
                 std::vector<CsvRow>& csv) {
  bool ok = true;
  const auto fail = [&ok, &workload](const std::string& what) {
    std::printf("FAIL [%s] %s\n", workload.name.c_str(), what.c_str());
    ok = false;
  };

  const mimo::MimoDetectorModel model(workload.params);
  engine::AnalysisEngine eng(engine::EngineOptions{1, 8});

  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = kProperties;
  request.options.reduction.quotient = reduce::Toggle::kOff;

  const auto unreduced = eng.analyze(request);
  if (!unreduced.ok()) {
    fail("unreduced request failed: " + unreduced.error);
    return false;
  }
  csv.push_back({workload.name, "unreduced", unreduced.states,
                 unreduced.transitions, 0.0, unreduced.timing.checkSeconds,
                 0.0, false});

  request.options.reduction.quotient = reduce::Toggle::kOn;
  const auto quotient = eng.analyze(request);
  if (!quotient.ok()) {
    fail("quotient request failed: " + quotient.error);
    return false;
  }
  if (!quotient.reduction.applied) fail("quotient stage did not apply");
  const double factor =
      quotient.reduction.statesAfter == 0
          ? 0.0
          : static_cast<double>(quotient.reduction.statesBefore) /
                static_cast<double>(quotient.reduction.statesAfter);
  if (factor < config.minFactor) {
    fail("state reduction factor " + std::to_string(factor) + " below " +
         std::to_string(config.minFactor));
  }
  double maxDiff = 0.0;
  for (std::size_t i = 0; i < kProperties.size(); ++i) {
    maxDiff = std::max(maxDiff, std::abs(quotient.results[i].value -
                                         unreduced.results[i].value));
  }
  // Exact by strong lumping; only FP accumulation order differs.
  if (!(maxDiff <= 1e-9)) {
    fail("quotient values drifted by " + std::to_string(maxDiff));
  }
  csv.push_back({workload.name, "quotient", quotient.reduction.statesAfter,
                 quotient.reduction.transitionsAfter,
                 quotient.reduction.reduceSeconds,
                 quotient.timing.checkSeconds, maxDiff, false});

  // A coalesced sweep re-requests the same (model, plan): the quotient must
  // come back from the cache.
  const auto repeat = eng.analyze(request);
  if (!repeat.ok() || !repeat.reduction.applied) {
    fail("repeat quotient request failed");
  } else if (!repeat.reduction.cacheHit) {
    fail("repeat request missed the quotient cache");
  }
  const auto stats = eng.stats();
  if (stats.quotientBuilds != 1 || stats.quotientHits < 1) {
    fail("quotient cache counters off: builds=" +
         std::to_string(stats.quotientBuilds) +
         " hits=" + std::to_string(stats.quotientHits));
  }

  // --- elimination: mean time to first error on the quotient ---
  const auto build = dtmc::buildExplicit(model);
  const la::BitVector error = build.dtmc.evalAtom(model, "error");
  const std::vector<double> flagReward = build.dtmc.evalReward(model, "");
  const reduce::ReducedModel reduced =
      reduce::buildQuotient(build.dtmc, {&error}, {&flagReward});
  if (reduced.info.statesAfter > config.elimMaxStates) {
    std::printf("  [%s] quotient %u states > --elim-max-states %llu, "
                "elimination stage skipped\n",
                workload.name.c_str(), reduced.info.statesAfter,
                static_cast<unsigned long long>(config.elimMaxStates));
    return ok;
  }
  const la::BitVector qError = reduce::projectMask(reduced.info, error);
  const std::vector<double> qOnes(reduced.quotient.numStates(), 1.0);

  util::Stopwatch elimTimer;
  const mc::ReachResult elim = mc::expectedReachRewardByElimination(
      reduced.quotient, qOnes, qError);
  const double elimSeconds = elimTimer.elapsedSeconds();
  const double mttfe = weightedValue(reduced.quotient, elim.stateValues);

  // Exactness check that does not depend on an iterative baseline: the
  // elimination answer must satisfy the original fixed-point equations.
  const double residual =
      rewardResidual(reduced.quotient, qOnes, qError, elim.stateValues);
  const double scale = std::max(1.0, mttfe);
  if (!(residual <= 1e-9 * scale)) {
    fail("elimination residual " + std::to_string(residual) +
         " exceeds 1e-9 relative");
  }

  // Iterative baseline only when it can converge: value iteration contracts
  // by ~(1 - BER) per step, so it needs ~ln(1/eps)/BER iterations.
  const double ber = unreduced.results[0].value;
  double iterDiff = 0.0;
  double iterSeconds = 0.0;
  const bool iterFeasible = ber > 1e-3;
  if (iterFeasible) {
    util::Stopwatch iterTimer;
    const mc::ReachResult iterative =
        mc::expectedReachReward(build.dtmc, std::vector<double>(
                                                build.dtmc.numStates(), 1.0),
                                error);
    iterSeconds = iterTimer.elapsedSeconds();
    if (!iterative.converged) {
      fail("iterative MTTFE baseline did not converge");
    } else {
      const double reference = weightedValue(build.dtmc, iterative.stateValues);
      iterDiff = std::abs(mttfe - reference);
      if (!(iterDiff <= 1e-6 * std::max(1.0, std::abs(reference)))) {
        fail("elimination MTTFE " + std::to_string(mttfe) +
             " vs iterative " + std::to_string(reference));
      }
      csv.push_back({workload.name, "mttfe_iterative_full",
                     build.dtmc.numStates(), build.dtmc.numTransitions(), 0.0,
                     iterSeconds, 0.0, false});
    }
  } else {
    std::printf("  [%s] BER %.3g too small for the iterative MTTFE baseline "
                "(would need ~%.0f iterations) — residual check only\n",
                workload.name.c_str(), ber, std::log(1e12) / ber);
  }
  csv.push_back({workload.name, "mttfe_elimination_quotient",
                 reduced.quotient.numStates(),
                 reduced.quotient.numTransitions(), reduced.info.seconds,
                 elimSeconds, iterDiff, false});

  std::printf("%-10s %10llu -> %8u states (factor %7.1f), nnz %llu -> %llu\n"
              "           t_check %0.3fs -> %0.3fs (+t_reduce %0.3fs), "
              "max|dv| %.2e, MTTFE %.6g (elim %0.3fs, residual %.2e)\n",
              workload.name.c_str(),
              static_cast<unsigned long long>(unreduced.states),
              quotient.reduction.statesAfter, factor,
              static_cast<unsigned long long>(unreduced.transitions),
              static_cast<unsigned long long>(
                  quotient.reduction.transitionsAfter),
              unreduced.timing.checkSeconds, quotient.timing.checkSeconds,
              quotient.reduction.reduceSeconds, maxDiff, mttfe, elimSeconds,
              residual);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      config.smoke = true;
    } else if (std::strcmp(argv[i], "--min-factor") == 0 && i + 1 < argc) {
      config.minFactor = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--elim-max-states") == 0 &&
               i + 1 < argc) {
      config.elimMaxStates = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      config.csvPath = argv[++i];
    } else {
      std::printf("usage: bench_reduce [--smoke] [--min-factor F] "
                  "[--elim-max-states N] [--csv path]\n");
      return 2;
    }
  }

  std::vector<Workload> workloads;
  if (config.smoke) {
    // Scaled-down detector configs: same pipeline/plan structure, small
    // enough for ctest. The factor bound relaxes with the state count.
    if (config.minFactor == 10.0) config.minFactor = 4.0;
    mimo::MimoParams small = mimo::mimo1x2Params();
    small.hLevels = 2;
    small.yLevels = 3;
    workloads.push_back({"1x2-smoke", small});
    mimo::MimoParams tiny = mimo::mimo1x2Params();
    tiny.hLevels = 2;
    tiny.yLevels = 2;
    tiny.snrDb = 6.0;
    workloads.push_back({"1x2-tiny", tiny});
  } else {
    workloads.push_back({"1x2", mimo::mimo1x2Params()});
    workloads.push_back({"1x4", mimo::mimo1x4Params()});
  }

  std::printf("=== reduce:: plan-aware quotient + elimination on MIMO "
              "detector chains ===\n\n");
  std::vector<CsvRow> csv;
  bool ok = true;
  for (const auto& workload : workloads) {
    ok = runWorkload(workload, config, csv) && ok;
  }

  if (config.csvPath != nullptr) {
    std::ofstream out(config.csvPath);
    out << "workload,config,states,nnz,reduce_seconds,check_seconds,"
           "max_abs_diff,cache_hit\n";
    for (const auto& row : csv) {
      out << row.workload << ',' << row.config << ',' << row.states << ','
          << row.nnz << ',' << row.reduceSeconds << ',' << row.checkSeconds
          << ',' << row.maxAbsDiff << ',' << (row.cacheHit ? 1 : 0) << '\n';
    }
    std::printf("\nwrote %s\n", config.csvPath);
  }

  std::printf("\n%s\n", ok ? "reduction contract: PASS"
                           : "reduction contract: FAIL");
  return ok ? 0 : 1;
}
